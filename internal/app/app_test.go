package app

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mdagent/internal/owl"
	"mdagent/internal/rdf"
	"mdagent/internal/wsdl"
)

func desc(name string) wsdl.Description {
	return wsdl.Description{
		Name: name,
		Services: []wsdl.Service{{
			Name:  "svc",
			Ports: []wsdl.Port{{Name: "p", Operations: []wsdl.Operation{{Name: "op"}}}},
		}},
	}
}

func playerApp(t *testing.T) *Application {
	t.Helper()
	a := New("player", "hostA", desc("player"))
	for _, c := range []Component{
		NewSizedBlob("codec-logic", KindLogic, 600<<10),
		NewUI("main-ui", 400<<10, 1024, 768),
		NewSizedBlob("music-data", KindData, 2<<20),
		NewState("playback-state"),
	} {
		if err := a.AddComponent(c); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestComponentKinds(t *testing.T) {
	a := playerApp(t)
	if got := a.ComponentsOfKind(KindData); len(got) != 1 || got[0] != "music-data" {
		t.Fatalf("data components = %v", got)
	}
	if got := a.Components(); len(got) != 4 || got[0] != "codec-logic" {
		t.Fatalf("components = %v (registration order expected)", got)
	}
	if _, ok := a.Component("codec-logic"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := a.Component("ghost"); ok {
		t.Fatal("ghost component found")
	}
	if err := a.AddComponent(NewState("playback-state")); err == nil {
		t.Fatal("duplicate component accepted")
	}
}

func TestKindAndRunStateStrings(t *testing.T) {
	if KindLogic.String() != "logic" || KindUI.String() != "ui" || KindData.String() != "data" ||
		KindState.String() != "state" || ComponentKind(0).String() != "invalid" {
		t.Fatal("kind strings wrong")
	}
	if Running.String() != "running" || Suspended.String() != "suspended" || RunState(0).String() != "invalid" {
		t.Fatal("run state strings wrong")
	}
}

func TestBlobSnapshotRestoreChecksum(t *testing.T) {
	b := NewSizedBlob("x", KindData, 1<<16)
	sum := b.Checksum()
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewBlob("x", KindData, nil)
	if err := b2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b2.Checksum() != sum {
		t.Fatal("checksum changed across snapshot/restore")
	}
	if b2.SizeBytes() != 1<<16 {
		t.Fatalf("size = %d", b2.SizeBytes())
	}
}

func TestStateComponentRoundTrip(t *testing.T) {
	s := NewState("st")
	s.Set("track", "song-3")
	s.Set("positionMs", "93500")
	if v, ok := s.Get("track"); !ok || v != "song-3" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if s.Len() != 2 || s.SizeBytes() <= 0 {
		t.Fatalf("Len=%d Size=%d", s.Len(), s.SizeBytes())
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewState("st")
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := s2.Get("positionMs"); v != "93500" {
		t.Fatalf("restored position = %q", v)
	}
	if err := s2.Restore([]byte("junk")); err == nil {
		t.Fatal("junk restore accepted")
	}
}

func TestCoordinatorObserverNotification(t *testing.T) {
	c := NewCoordinator("player@hostA")
	var mu sync.Mutex
	var got []StateChange
	c.Register("ui1", ObserverFunc(func(ch StateChange) {
		mu.Lock()
		got = append(got, ch)
		mu.Unlock()
	}))
	c.Register("ui2", ObserverFunc(func(ch StateChange) {
		mu.Lock()
		got = append(got, ch)
		mu.Unlock()
	}))
	if !c.Set("track", "t1") {
		t.Fatal("Set rejected while running")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("notifications = %d, want 2 (multicast)", len(got))
	}
	if got[0].Key != "track" || got[0].Origin != "player@hostA" || got[0].Seq != 1 {
		t.Fatalf("change = %+v", got[0])
	}
	if v, ok := c.Get("track"); !ok || v != "t1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestCoordinatorDeregisterAndLists(t *testing.T) {
	c := NewCoordinator("o")
	n := 0
	c.Register("ui", ObserverFunc(func(StateChange) { n++ }))
	if obs := c.Observers(); len(obs) != 1 || obs[0] != "ui" {
		t.Fatalf("Observers = %v", obs)
	}
	c.Deregister("ui")
	c.Set("k", "v")
	if n != 0 {
		t.Fatal("deregistered observer notified")
	}
}

func TestCoordinatorFreezeRejectsChanges(t *testing.T) {
	c := NewCoordinator("o")
	c.Freeze()
	if c.Set("k", "v") {
		t.Fatal("Set accepted while frozen")
	}
	if !c.Frozen() {
		t.Fatal("Frozen = false")
	}
	c.Thaw()
	if !c.Set("k", "v") {
		t.Fatal("Set rejected after thaw")
	}
}

func TestCoordinatorSyncLinkForwardingAndEchoSuppression(t *testing.T) {
	// Master and clone coordinators linked both ways, as clone-dispatch
	// sets them up. A change at the master must reach the clone exactly
	// once and not bounce back.
	master := NewCoordinator("master")
	clone := NewCoordinator("clone")
	var masterRecv, cloneRecv int

	master.AddLink("clone", func(ch StateChange) { clone.ApplyRemote(ch) })
	clone.AddLink("master", func(ch StateChange) { master.ApplyRemote(ch) })
	master.Register("obs", ObserverFunc(func(StateChange) { masterRecv++ }))
	clone.Register("obs", ObserverFunc(func(StateChange) { cloneRecv++ }))

	master.Set("slide", "7")
	if cloneRecv != 1 {
		t.Fatalf("clone notifications = %d, want 1", cloneRecv)
	}
	if masterRecv != 1 {
		t.Fatalf("master notifications = %d, want 1 (no echo)", masterRecv)
	}
	if v, _ := clone.Get("slide"); v != "7" {
		t.Fatalf("clone state = %q", v)
	}
	if links := master.Links(); len(links) != 1 || links[0] != "clone" {
		t.Fatalf("Links = %v", links)
	}
	master.RemoveLink("clone")
	master.Set("slide", "8")
	if v, _ := clone.Get("slide"); v != "7" {
		t.Fatal("removed link still forwarding")
	}
}

func TestCoordinatorChainedClonesPropagate(t *testing.T) {
	// master -> cloneA -> cloneB: a remote change must flow through
	// intermediate links (origin-based suppression only blocks the
	// immediate back-link).
	master := NewCoordinator("master")
	a := NewCoordinator("cloneA")
	b := NewCoordinator("cloneB")
	master.AddLink("cloneA", func(ch StateChange) { a.ApplyRemote(ch) })
	a.AddLink("master", func(ch StateChange) { master.ApplyRemote(ch) })
	a.AddLink("cloneB", func(ch StateChange) { b.ApplyRemote(ch) })
	b.AddLink("cloneA", func(ch StateChange) { a.ApplyRemote(ch) })

	master.Set("slide", "3")
	if v, _ := b.Get("slide"); v != "3" {
		t.Fatalf("cloneB state = %q, want 3", v)
	}
}

func TestSuspendResume(t *testing.T) {
	a := playerApp(t)
	if err := a.Suspend(); err != nil {
		t.Fatal(err)
	}
	if a.State() != Suspended || !a.Coordinator().Frozen() {
		t.Fatal("suspend did not freeze")
	}
	if err := a.Suspend(); err == nil {
		t.Fatal("double suspend accepted")
	}
	if err := a.Resume(); err != nil {
		t.Fatal(err)
	}
	if a.State() != Running || a.Coordinator().Frozen() {
		t.Fatal("resume did not thaw")
	}
	if err := a.Resume(); err == nil {
		t.Fatal("double resume accepted")
	}
}

func TestWrapSelectedComponents(t *testing.T) {
	a := playerApp(t)
	st, _ := a.Component("playback-state")
	st.(*StateComponent).Set("positionMs", "4200")
	a.Coordinator().Set("track", "song-1")
	if err := a.Suspend(); err != nil {
		t.Fatal(err)
	}

	// Adaptive binding: wrap state only.
	w, err := a.WrapComponents([]string{"playback-state"})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Components) != 1 {
		t.Fatalf("wrapped = %d components", len(w.Components))
	}
	if w.TotalBytes() > 1<<10 {
		t.Fatalf("state-only wrap = %d bytes, suspiciously large", w.TotalBytes())
	}
	if w.CoordState["track"] != "song-1" {
		t.Fatalf("coord state = %v", w.CoordState)
	}

	// Static binding: wrap everything; dominated by the 2 MiB data.
	wAll, err := a.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wAll.Components) != 4 {
		t.Fatalf("full wrap = %d components", len(wAll.Components))
	}
	if wAll.TotalBytes() < 3_000_000 { // 600Ki logic + 400Ki UI + 2Mi data
		t.Fatalf("full wrap = %d bytes, want > 3 MB", wAll.TotalBytes())
	}
	if _, err := a.WrapComponents([]string{"nonexistent"}); err == nil {
		t.Fatal("wrap of unknown component accepted")
	}
}

func TestWrapEncodeDecodeUnwrap(t *testing.T) {
	a := playerApp(t)
	st, _ := a.Component("playback-state")
	st.(*StateComponent).Set("positionMs", "777")
	a.Coordinator().Set("track", "t9")
	a.SetProfile(UserProfile{User: "alice", Preferences: map[string]string{"handedness": "left"}})
	data, _ := a.Component("music-data")
	wantSum := data.(*BlobComponent).Checksum()

	w, err := a.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh instance at the destination with no components at all: unwrap
	// must recreate them (code-carrying migration). Wire framing is
	// internal/state's job now and is tested there.
	b := New("player", "hostB", desc("player"))
	if err := b.Unwrap(w); err != nil {
		t.Fatal(err)
	}
	if len(b.Components()) != 4 {
		t.Fatalf("restored components = %v", b.Components())
	}
	restored, _ := b.Component("music-data")
	if restored.(*BlobComponent).Checksum() != wantSum {
		t.Fatal("data corrupted in transfer")
	}
	rst, _ := b.Component("playback-state")
	if v, _ := rst.(*StateComponent).Get("positionMs"); v != "777" {
		t.Fatalf("restored state = %q", v)
	}
	if v, _ := b.Coordinator().Get("track"); v != "t9" {
		t.Fatalf("restored coord = %q", v)
	}
	if b.Profile().Preferences["handedness"] != "left" {
		t.Fatal("profile lost")
	}
}

func TestSnapshotManagerRecordRollback(t *testing.T) {
	a := playerApp(t)
	st, _ := a.Component("playback-state")
	sc := st.(*StateComponent)
	sc.Set("positionMs", "100")
	if _, err := a.Snapshots().Record("pre-migration", time.Unix(10, 0)); err != nil {
		t.Fatal(err)
	}
	sc.Set("positionMs", "999")
	if err := a.Snapshots().Rollback("pre-migration"); err != nil {
		t.Fatal(err)
	}
	if v, _ := sc.Get("positionMs"); v != "100" {
		t.Fatalf("rollback state = %q", v)
	}
	if err := a.Snapshots().Rollback("never"); err == nil {
		t.Fatal("rollback to unknown tag accepted")
	}
	if _, ok := a.Snapshots().Latest(); !ok {
		t.Fatal("Latest missing")
	}
	if _, ok := a.Snapshots().Find("pre-migration"); !ok {
		t.Fatal("Find missing")
	}
}

func TestSnapshotHistoryCap(t *testing.T) {
	a := playerApp(t)
	a.Snapshots().SetCap(2)
	for i := 0; i < 5; i++ {
		if _, err := a.Snapshots().Record("t", time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Snapshots().Len(); got != 2 {
		t.Fatalf("history len = %d, want 2", got)
	}
	a.Snapshots().SetCap(0) // clamps to 1
	if got := a.Snapshots().Len(); got != 1 {
		t.Fatalf("after cap clamp, len = %d", got)
	}
}

func TestAdaptorPlanHandheld(t *testing.T) {
	ad := NewAdaptor()
	plan := ad.Plan(wsdl.DeviceProfile{
		Host: "pda1", ScreenWidth: 320, ScreenHeight: 240, HasAudio: false,
	}, UserProfile{User: "alice", Preferences: map[string]string{"handedness": "left"}})
	if plan.ScaleX >= 0.5 || plan.ScaleY >= 0.5 {
		t.Fatalf("plan scales = %v, %v", plan.ScaleX, plan.ScaleY)
	}
	if !plan.MirrorLayout {
		t.Fatal("left-handed mirror not planned")
	}
	if !plan.MutedAudio {
		t.Fatal("audio-less device not muted")
	}
	if plan.FontScale <= plan.ScaleX {
		t.Fatal("small-screen font compensation missing")
	}
	if _, ok := ad.LastPlan(); !ok {
		t.Fatal("LastPlan missing")
	}
	if strings.Join(plan.Notes, ";") == "" {
		t.Fatal("plan carries no notes")
	}
}

func TestAdaptorApplyToUI(t *testing.T) {
	a := playerApp(t)
	a.SetProfile(UserProfile{User: "bob", Preferences: map[string]string{}})
	dev := wsdl.DeviceProfile{Host: "hostB", ScreenWidth: 512, ScreenHeight: 384, HasAudio: true}
	plan, adapted, err := a.Adaptor().Apply(a, dev)
	if err != nil {
		t.Fatal(err)
	}
	if adapted != 1 {
		t.Fatalf("adapted = %d components, want 1 (the UI)", adapted)
	}
	ui, _ := a.Component("main-ui")
	w, h := ui.(*UIComponent).Geometry()
	if w != 512 || h != 384 {
		t.Fatalf("UI geometry = %dx%d, want 512x384 (plan %+v)", w, h, plan)
	}
	if ui.(*UIComponent).GeometryString() != "512x384" {
		t.Fatal("GeometryString wrong")
	}
}

func TestAdaptorRejectsCollapse(t *testing.T) {
	ui := NewUI("u", 1024, 100, 100)
	err := ui.Adapt(Adaptation{ScaleX: 0.0001, ScaleY: 0.0001, FontScale: 1})
	if err == nil {
		t.Fatal("collapsing adaptation accepted")
	}
}

func TestAdaptorReferenceValidation(t *testing.T) {
	ad := NewAdaptor()
	if err := ad.SetReference(0, 100); err == nil {
		t.Fatal("zero reference accepted")
	}
	if err := ad.SetReference(800, 600); err != nil {
		t.Fatal(err)
	}
	plan := ad.Plan(wsdl.DeviceProfile{Host: "h", ScreenWidth: 800, ScreenHeight: 600, HasAudio: true}, UserProfile{})
	if plan.ScaleX != 1 || plan.ScaleY != 1 {
		t.Fatalf("same-geometry plan scales = %v, %v", plan.ScaleX, plan.ScaleY)
	}
}

func TestUIObserverCountsRenders(t *testing.T) {
	a := playerApp(t)
	ui, _ := a.Component("main-ui")
	a.Coordinator().Register("main-ui", ui.(*UIComponent))
	a.Coordinator().Set("track", "t1")
	a.Coordinator().Set("track", "t2")
	if got := ui.(*UIComponent).Renders(); got != 2 {
		t.Fatalf("renders = %d, want 2", got)
	}
}

func TestResourceBindings(t *testing.T) {
	a := playerApp(t)
	a.BindResource(owl.Resource{ID: "song1", Class: rdf.IMCL("MusicFile"), Host: "hostA", SizeBytes: 2 << 20})
	rs := a.Resources()
	if len(rs) != 1 || rs[0].ID != "song1" {
		t.Fatalf("Resources = %v", rs)
	}
}

func TestSetHostUpdatesOrigin(t *testing.T) {
	a := playerApp(t)
	a.SetHost("hostB")
	if a.Host() != "hostB" {
		t.Fatalf("Host = %s", a.Host())
	}
	var origin string
	a.Coordinator().Register("o", ObserverFunc(func(ch StateChange) { origin = ch.Origin }))
	a.Coordinator().Set("k", "v")
	if origin != "player@hostB" {
		t.Fatalf("origin = %q", origin)
	}
}

// Property: wrap/unwrap round-trips arbitrary state contents.
func TestWrapRoundTripProperty(t *testing.T) {
	f := func(kv map[string]string) bool {
		a := New("x", "h1", desc("x"))
		st := NewState("s")
		if err := a.AddComponent(st); err != nil {
			return false
		}
		for k, v := range kv {
			st.Set(k, v)
		}
		w, err := a.WrapComponents(nil)
		if err != nil {
			return false
		}
		b := New("x", "h2", desc("x"))
		if err := b.Unwrap(w); err != nil {
			return false
		}
		rst, ok := b.Component("s")
		if !ok {
			return false
		}
		for k, v := range kv {
			got, ok := rst.(*StateComponent).Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// plainComp is a Component without ChangeNotifier — the always-dirty
// fallback case.
type plainComp struct{ data []byte }

func (p *plainComp) Name() string              { return "plain" }
func (p *plainComp) Kind() ComponentKind       { return KindData }
func (p *plainComp) SizeBytes() int64          { return int64(len(p.data)) }
func (p *plainComp) Snapshot() ([]byte, error) { return append([]byte(nil), p.data...), nil }
func (p *plainComp) Restore(b []byte) error    { p.data = append([]byte(nil), b...); return nil }

func TestDirtyCountersEnumerateChanges(t *testing.T) {
	a := New("x", "h1", desc("x"))
	st := NewState("st")
	blob := NewBlob("blob", KindData, []byte("v1"))
	if err := a.AddComponent(st); err != nil {
		t.Fatal(err)
	}
	if err := a.AddComponent(blob); err != nil {
		t.Fatal(err)
	}
	if !a.FullyTracked() {
		t.Fatal("state+blob app reported untracked")
	}
	base := a.ChangeSeq()
	if got := a.ChangedSince(base); len(got) != 0 {
		t.Fatalf("nothing changed yet ChangedSince = %v", got)
	}

	// Component mutations are attributed to the right component.
	st.Set("k", "v")
	if got := a.ChangedSince(base); len(got) != 1 || got[0] != "st" {
		t.Fatalf("after st.Set ChangedSince = %v, want [st]", got)
	}
	blob.SetContent([]byte("v2"))
	if got := a.ChangedSince(base); len(got) != 2 {
		t.Fatalf("after SetContent ChangedSince = %v, want [st blob]", got)
	}
	if a.ChangeSeq() == base {
		t.Fatal("mutations did not advance ChangeSeq")
	}

	// Coordinator and profile mutations advance the counter without
	// naming a component (they always ride along whole).
	mid := a.ChangeSeq()
	a.Coordinator().Set("track", "t1")
	if a.ChangeSeq() == mid {
		t.Fatal("coordinator mutation did not advance ChangeSeq")
	}
	if got := a.ChangedSince(mid); len(got) != 0 {
		t.Fatalf("coordinator change attributed to a component: %v", got)
	}
	mid = a.ChangeSeq()
	a.SetProfile(UserProfile{User: "alice"})
	if a.ChangeSeq() == mid {
		t.Fatal("profile mutation did not advance ChangeSeq")
	}

	// Restore (unwrap path) marks the restored component dirty.
	mid = a.ChangeSeq()
	if err := blob.Restore([]byte("v3")); err != nil {
		t.Fatal(err)
	}
	if got := a.ChangedSince(mid); len(got) != 1 || got[0] != "blob" {
		t.Fatalf("after Restore ChangedSince = %v, want [blob]", got)
	}
}

func TestUntrackedComponentsAreAlwaysDirty(t *testing.T) {
	a := New("x", "h1", desc("x"))
	if err := a.AddComponent(NewState("st")); err != nil {
		t.Fatal(err)
	}
	if err := a.AddComponent(&plainComp{data: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	if a.FullyTracked() {
		t.Fatal("app with a plain component reported fully tracked")
	}
	// The untracked component is in every ChangedSince answer — it
	// cannot prove itself clean.
	seq := a.ChangeSeq()
	if got := a.ChangedSince(seq); len(got) != 1 || got[0] != "plain" {
		t.Fatalf("ChangedSince = %v, want [plain]", got)
	}
}
