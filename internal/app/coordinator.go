package app

import (
	"sort"
	"sync"
)

// StateChange is one observable application state mutation, flowing from
// the logic controller through the Coordinator to registered
// presentations and any synchronization links.
type StateChange struct {
	Key    string
	Value  string
	Seq    uint64 // coordinator-local total order
	Origin string // application instance that originated the change
}

// Observer receives state-change notifications — the Observer pattern the
// paper builds the application model on (§4.2: "different presentations
// register themselves to the coordinator. When the states change, these
// presentations can get notified automatically").
type Observer interface {
	Notify(change StateChange)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(StateChange)

// Notify implements Observer.
func (f ObserverFunc) Notify(c StateChange) { f(c) }

// Coordinator is the base-level hub: it keeps canonical application
// state, notifies registered presentations on change, and forwards
// changes down synchronization links to cloned instances (clone-dispatch
// mobility, §4.2.2). It is safe for concurrent use.
type Coordinator struct {
	origin string // owning application instance id

	// onMutate, when set (by the owning Application), is called outside
	// c.mu after every accepted state mutation — the dirty-counter feed
	// for the state pipeline.
	onMutate func()

	mu        sync.Mutex
	state     map[string]string
	seq       uint64
	observers map[string]Observer
	links     map[string]func(StateChange) // link name -> forwarder
	frozen    bool                         // suspended: changes rejected
	applied   map[string]uint64            // origin -> highest remote seq applied
}

// NewCoordinator creates a coordinator for the named application instance.
func NewCoordinator(origin string) *Coordinator {
	return &Coordinator{
		origin:    origin,
		state:     make(map[string]string),
		observers: make(map[string]Observer),
		links:     make(map[string]func(StateChange)),
		applied:   make(map[string]uint64),
	}
}

// Register adds a named observer (presentation). Re-registering a name
// replaces the observer.
func (c *Coordinator) Register(name string, o Observer) {
	c.mu.Lock()
	c.observers[name] = o
	c.mu.Unlock()
}

// Deregister removes an observer.
func (c *Coordinator) Deregister(name string) {
	c.mu.Lock()
	delete(c.observers, name)
	c.mu.Unlock()
}

// Observers lists registered observer names, sorted.
func (c *Coordinator) Observers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.observers))
	for n := range c.observers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddLink attaches a synchronization link: every accepted change is
// forwarded to fn (which typically ships it to a cloned instance).
func (c *Coordinator) AddLink(name string, fn func(StateChange)) {
	c.mu.Lock()
	c.links[name] = fn
	c.mu.Unlock()
}

// RemoveLink detaches a synchronization link.
func (c *Coordinator) RemoveLink(name string) {
	c.mu.Lock()
	delete(c.links, name)
	c.mu.Unlock()
}

// Links lists attached link names, sorted.
func (c *Coordinator) Links() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.links))
	for n := range c.links {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Set applies a local state change, notifying observers and links.
// It reports whether the change was accepted (false while frozen).
func (c *Coordinator) Set(key, value string) bool {
	c.mu.Lock()
	if c.frozen {
		c.mu.Unlock()
		return false
	}
	c.seq++
	change := StateChange{Key: key, Value: value, Seq: c.seq, Origin: c.origin}
	c.state[key] = value
	obs, links := c.snapshotTargetsLocked()
	c.mu.Unlock()

	if c.onMutate != nil {
		c.onMutate()
	}
	for _, o := range obs {
		o.Notify(change)
	}
	for _, l := range links {
		l(change)
	}
	return true
}

// ApplyRemote applies a change received over a synchronization link.
// Each coordinator remembers the highest sequence number applied per
// originating instance and drops duplicates, so changes propagate exactly
// once through arbitrary link topologies (pairs, chains, or cycles of
// master and clones) without echo storms.
func (c *Coordinator) ApplyRemote(change StateChange) {
	c.mu.Lock()
	if c.frozen || change.Origin == c.origin || c.applied[change.Origin] >= change.Seq {
		c.mu.Unlock()
		return
	}
	c.applied[change.Origin] = change.Seq
	c.state[change.Key] = change.Value
	obs, links := c.snapshotTargetsLocked()
	c.mu.Unlock()

	if c.onMutate != nil {
		c.onMutate()
	}
	for _, o := range obs {
		o.Notify(change)
	}
	for _, l := range links {
		l(change)
	}
}

func (c *Coordinator) snapshotTargetsLocked() ([]Observer, []func(StateChange)) {
	obs := make([]Observer, 0, len(c.observers))
	names := make([]string, 0, len(c.observers))
	for n := range c.observers {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic notification order
	for _, n := range names {
		obs = append(obs, c.observers[n])
	}
	links := make([]func(StateChange), 0, len(c.links))
	for _, l := range c.links {
		links = append(links, l)
	}
	return obs, links
}

// Get reads a state value.
func (c *Coordinator) Get(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.state[key]
	return v, ok
}

// State returns a copy of the full state map.
func (c *Coordinator) State() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make(map[string]string, len(c.state))
	for k, v := range c.state {
		cp[k] = v
	}
	return cp
}

// Freeze rejects further changes (used during suspension).
func (c *Coordinator) Freeze() {
	c.mu.Lock()
	c.frozen = true
	c.mu.Unlock()
}

// Thaw re-enables changes.
func (c *Coordinator) Thaw() {
	c.mu.Lock()
	c.frozen = false
	c.mu.Unlock()
}

// Frozen reports whether the coordinator is frozen.
func (c *Coordinator) Frozen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frozen
}

// replaceState swaps in a restored state map (snapshot restore path).
func (c *Coordinator) replaceState(state map[string]string) {
	c.mu.Lock()
	c.state = make(map[string]string, len(state))
	for k, v := range state {
		c.state[k] = v
	}
	c.mu.Unlock()
	if c.onMutate != nil {
		c.onMutate()
	}
}
