package app

import (
	"fmt"
	"sync"
	"time"
)

// SnapshotManager is the base-level persistence controller (paper §4.2.1:
// "The snapshot management is responsible for persistence process control
// of running applications"). It captures full-application snapshots —
// every component plus coordinator state — and keeps a bounded history so
// a crashed or mis-migrated application can roll back.
type SnapshotManager struct {
	app *Application

	mu         sync.Mutex
	history    []TaggedSnapshot
	cap        int
	onRecord   map[int]func(TaggedSnapshot)
	nextHookID int
}

// TaggedSnapshot is one recorded snapshot with provenance.
type TaggedSnapshot struct {
	Tag  string
	At   time.Time
	Wrap Wrap
	// ChangeSeq is the application's mutation counter read just before
	// the wrap was captured — a conservative lower bound on what the
	// wrap contains, letting the state replicator keep its dirty fast
	// path valid across explicitly recorded snapshots.
	ChangeSeq uint64
}

// NewSnapshotManager creates a manager for app with a history cap of 8.
func NewSnapshotManager(app *Application) *SnapshotManager {
	return &SnapshotManager{app: app, cap: 8}
}

// SetCap adjusts the history bound (minimum 1).
func (m *SnapshotManager) SetCap(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 1 {
		n = 1
	}
	m.cap = n
	m.trimLocked()
}

func (m *SnapshotManager) trimLocked() {
	if len(m.history) > m.cap {
		m.history = m.history[len(m.history)-m.cap:]
	}
}

// OnRecord registers an observer fired (outside the manager's lock, on
// the recording goroutine) after every successful Record — the state
// pipeline's replicator hooks here so explicitly captured snapshots
// replicate immediately instead of waiting out the capture interval.
// The returned id detaches the observer via RemoveOnRecord.
func (m *SnapshotManager) OnRecord(f func(TaggedSnapshot)) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.onRecord == nil {
		m.onRecord = make(map[int]func(TaggedSnapshot))
	}
	m.nextHookID++
	m.onRecord[m.nextHookID] = f
	return m.nextHookID
}

// RemoveOnRecord detaches an OnRecord observer.
func (m *SnapshotManager) RemoveOnRecord(id int) {
	m.mu.Lock()
	delete(m.onRecord, id)
	m.mu.Unlock()
}

// Record captures a full snapshot of the application under tag. The
// timestamp is supplied by the caller so virtual-clock runs stay
// deterministic.
func (m *SnapshotManager) Record(tag string, at time.Time) (TaggedSnapshot, error) {
	// Read the counter before the wrap: a mutation landing mid-capture
	// then looks newer than the snapshot and triggers a re-capture,
	// never a wrongly skipped one.
	seq := m.app.ChangeSeq()
	w, err := m.app.WrapComponents(nil)
	if err != nil {
		return TaggedSnapshot{}, err
	}
	ts := TaggedSnapshot{Tag: tag, At: at, Wrap: w, ChangeSeq: seq}
	m.mu.Lock()
	m.history = append(m.history, ts)
	m.trimLocked()
	observers := make([]func(TaggedSnapshot), 0, len(m.onRecord))
	for _, f := range m.onRecord {
		observers = append(observers, f)
	}
	m.mu.Unlock()
	for _, f := range observers {
		f(ts)
	}
	return ts, nil
}

// Latest returns the most recent snapshot.
func (m *SnapshotManager) Latest() (TaggedSnapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.history) == 0 {
		return TaggedSnapshot{}, false
	}
	return m.history[len(m.history)-1], true
}

// Find returns the most recent snapshot with the given tag.
func (m *SnapshotManager) Find(tag string) (TaggedSnapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.history) - 1; i >= 0; i-- {
		if m.history[i].Tag == tag {
			return m.history[i], true
		}
	}
	return TaggedSnapshot{}, false
}

// Len reports how many snapshots are retained.
func (m *SnapshotManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.history)
}

// Rollback restores the application from the most recent snapshot with
// the given tag — the fault-tolerance half of snapshot management.
func (m *SnapshotManager) Rollback(tag string) error {
	ts, ok := m.Find(tag)
	if !ok {
		return fmt.Errorf("app: no snapshot tagged %q", tag)
	}
	return m.app.Unwrap(ts.Wrap)
}
