package app

import (
	"fmt"
	"sync"
	"time"
)

// SnapshotManager is the base-level persistence controller (paper §4.2.1:
// "The snapshot management is responsible for persistence process control
// of running applications"). It captures full-application snapshots —
// every component plus coordinator state — and keeps a bounded history so
// a crashed or mis-migrated application can roll back.
type SnapshotManager struct {
	app *Application

	mu      sync.Mutex
	history []TaggedSnapshot
	cap     int
}

// TaggedSnapshot is one recorded snapshot with provenance.
type TaggedSnapshot struct {
	Tag  string
	At   time.Time
	Wrap Wrap
}

// NewSnapshotManager creates a manager for app with a history cap of 8.
func NewSnapshotManager(app *Application) *SnapshotManager {
	return &SnapshotManager{app: app, cap: 8}
}

// SetCap adjusts the history bound (minimum 1).
func (m *SnapshotManager) SetCap(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 1 {
		n = 1
	}
	m.cap = n
	m.trimLocked()
}

func (m *SnapshotManager) trimLocked() {
	if len(m.history) > m.cap {
		m.history = m.history[len(m.history)-m.cap:]
	}
}

// Record captures a full snapshot of the application under tag. The
// timestamp is supplied by the caller so virtual-clock runs stay
// deterministic.
func (m *SnapshotManager) Record(tag string, at time.Time) (TaggedSnapshot, error) {
	w, err := m.app.WrapComponents(nil)
	if err != nil {
		return TaggedSnapshot{}, err
	}
	ts := TaggedSnapshot{Tag: tag, At: at, Wrap: w}
	m.mu.Lock()
	m.history = append(m.history, ts)
	m.trimLocked()
	m.mu.Unlock()
	return ts, nil
}

// Latest returns the most recent snapshot.
func (m *SnapshotManager) Latest() (TaggedSnapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.history) == 0 {
		return TaggedSnapshot{}, false
	}
	return m.history[len(m.history)-1], true
}

// Find returns the most recent snapshot with the given tag.
func (m *SnapshotManager) Find(tag string) (TaggedSnapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.history) - 1; i >= 0; i-- {
		if m.history[i].Tag == tag {
			return m.history[i], true
		}
	}
	return TaggedSnapshot{}, false
}

// Len reports how many snapshots are retained.
func (m *SnapshotManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.history)
}

// Rollback restores the application from the most recent snapshot with
// the given tag — the fault-tolerance half of snapshot management.
func (m *SnapshotManager) Rollback(tag string) error {
	ts, ok := m.Find(tag)
	if !ok {
		return fmt.Errorf("app: no snapshot tagged %q", tag)
	}
	return m.app.Unwrap(ts.Wrap)
}
