// Package app implements MDAgent's two-level application model (paper
// Fig. 3, §4.2). The upper level holds what users see: logic controllers,
// presentations, data and resource components, plus profiles and the
// WSDL-like interface description. The base level holds the supporting
// machinery: the Coordinator (Observer pattern — presentations register
// and are notified automatically on state changes, giving the
// loosely-coupled architecture of §4.2.1), the SnapshotManager
// (persistence of running state), and the Adaptor (bridging device
// mismatches after migration). The mobile agent binds to any subset of
// serializable components — "mobile agent is not bounded to a specific
// component of applications; instead it can wrap any serializable part".
package app

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"sync"
)

// ComponentKind classifies migratable application parts, following the
// paper's decomposition into logics, presentations, resources and data.
type ComponentKind int

// Component kinds.
const (
	KindLogic ComponentKind = iota + 1
	KindUI
	KindData
	KindState
)

func (k ComponentKind) String() string {
	switch k {
	case KindLogic:
		return "logic"
	case KindUI:
		return "ui"
	case KindData:
		return "data"
	case KindState:
		return "state"
	default:
		return "invalid"
	}
}

// Component is a migratable application part: it must name itself, report
// its payload size (for transfer costing) and serialize round-trip.
type Component interface {
	Name() string
	Kind() ComponentKind
	SizeBytes() int64
	Snapshot() ([]byte, error)
	Restore(state []byte) error
}

// ChangeNotifier is implemented by components that announce content
// mutations. The Application registers a callback when such a component
// is added, maintaining per-component dirty counters so the state
// pipeline can skip serializing components — or whole applications —
// that have not changed since the last capture. Components that do not
// implement it are treated as always-dirty (see Application.FullyTracked).
type ChangeNotifier interface {
	// OnContentChange registers fn to be called (outside the component's
	// own lock) after every mutation of the serialized content.
	OnContentChange(fn func())
}

// BlobComponent is a Component holding opaque bytes — the stand-in for
// compiled logic, UI bundles, and media data payloads.
type BlobComponent struct {
	name string
	kind ComponentKind

	mu       sync.Mutex
	data     []byte
	onChange func()
}

var (
	_ Component      = (*BlobComponent)(nil)
	_ ChangeNotifier = (*BlobComponent)(nil)
)

// NewBlob creates a blob component with the given payload.
func NewBlob(name string, kind ComponentKind, data []byte) *BlobComponent {
	return &BlobComponent{name: name, kind: kind, data: data}
}

// NewSizedBlob creates a blob of size bytes of deterministic content,
// convenient for synthetic logic/UI/data payloads.
func NewSizedBlob(name string, kind ComponentKind, size int64) *BlobComponent {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*131 + len(name))
	}
	return NewBlob(name, kind, data)
}

// Name implements Component.
func (b *BlobComponent) Name() string { return b.name }

// Kind implements Component.
func (b *BlobComponent) Kind() ComponentKind { return b.kind }

// SizeBytes implements Component.
func (b *BlobComponent) SizeBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(len(b.data))
}

// Checksum returns the SHA-256 of the payload, for integrity checks after
// migration.
func (b *BlobComponent) Checksum() [32]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return sha256.Sum256(b.data)
}

// Snapshot implements Component.
func (b *BlobComponent) Snapshot() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]byte, len(b.data))
	copy(cp, b.data)
	return cp, nil
}

// SetContent replaces the payload in place — a media app swapping its
// buffer, an editor saving a document. The mutation bumps the owning
// application's dirty counter so the next state capture ships it.
func (b *BlobComponent) SetContent(data []byte) {
	b.mu.Lock()
	b.data = make([]byte, len(data))
	copy(b.data, data)
	fn := b.onChange
	b.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Restore implements Component.
func (b *BlobComponent) Restore(state []byte) error {
	b.mu.Lock()
	b.data = make([]byte, len(state))
	copy(b.data, state)
	fn := b.onChange
	b.mu.Unlock()
	if fn != nil {
		fn()
	}
	return nil
}

// OnContentChange implements ChangeNotifier.
func (b *BlobComponent) OnContentChange(fn func()) {
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

// StateComponent is a small key-value state component — playback
// positions, cursor offsets, session fields. It is the piece that always
// migrates, in both adaptive and static binding.
type StateComponent struct {
	name string

	mu       sync.Mutex
	fields   map[string]string
	onChange func()
}

var (
	_ Component      = (*StateComponent)(nil)
	_ ChangeNotifier = (*StateComponent)(nil)
)

// NewState creates an empty state component.
func NewState(name string) *StateComponent {
	return &StateComponent{name: name, fields: make(map[string]string)}
}

// Name implements Component.
func (s *StateComponent) Name() string { return s.name }

// Kind implements Component.
func (s *StateComponent) Kind() ComponentKind { return KindState }

// Set stores a state field.
func (s *StateComponent) Set(key, value string) {
	s.mu.Lock()
	s.fields[key] = value
	fn := s.onChange
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Get reads a state field.
func (s *StateComponent) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.fields[key]
	return v, ok
}

// Len reports the number of fields.
func (s *StateComponent) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fields)
}

// SizeBytes implements Component.
func (s *StateComponent) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for k, v := range s.fields {
		n += int64(len(k) + len(v) + 2)
	}
	return n
}

// Snapshot implements Component.
func (s *StateComponent) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.fields); err != nil {
		return nil, fmt.Errorf("app: state snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements Component.
func (s *StateComponent) Restore(state []byte) error {
	fields := make(map[string]string)
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&fields); err != nil {
		return fmt.Errorf("app: state restore: %w", err)
	}
	s.mu.Lock()
	s.fields = fields
	fn := s.onChange
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
	return nil
}

// OnContentChange implements ChangeNotifier.
func (s *StateComponent) OnContentChange(fn func()) {
	s.mu.Lock()
	s.onChange = fn
	s.mu.Unlock()
}
