package app

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mdagent/internal/wsdl"
)

func snapApp(t *testing.T) (*Application, *StateComponent) {
	t.Helper()
	a := New("snap-app", "h1", wsdl.Description{Name: "snap-app"})
	st := NewState("st")
	if err := a.AddComponent(st); err != nil {
		t.Fatal(err)
	}
	return a, st
}

func at(sec int) time.Time { return time.Unix(int64(sec), 0) }

func TestSnapshotHistoryCapEvictsOldestFirst(t *testing.T) {
	a, st := snapApp(t)
	m := a.Snapshots()
	m.SetCap(3)
	for i := 1; i <= 5; i++ {
		st.Set("v", fmt.Sprint(i))
		if _, err := m.Record(fmt.Sprintf("t%d", i), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want cap 3", m.Len())
	}
	// The two oldest are evicted in order; the newest three survive.
	for _, gone := range []string{"t1", "t2"} {
		if _, ok := m.Find(gone); ok {
			t.Fatalf("%s survived past the cap", gone)
		}
	}
	for _, kept := range []string{"t3", "t4", "t5"} {
		if _, ok := m.Find(kept); !ok {
			t.Fatalf("%s evicted while newer than cap", kept)
		}
	}
	latest, ok := m.Latest()
	if !ok || latest.Tag != "t5" {
		t.Fatalf("Latest = %+v, want t5", latest)
	}

	// Shrinking the cap trims from the oldest end immediately.
	m.SetCap(1)
	if m.Len() != 1 {
		t.Fatalf("Len after SetCap(1) = %d", m.Len())
	}
	if _, ok := m.Find("t4"); ok {
		t.Fatal("t4 survived SetCap(1)")
	}
	if only, ok := m.Latest(); !ok || only.Tag != "t5" {
		t.Fatalf("Latest after shrink = %+v, want t5", only)
	}
}

func TestRollbackToNamedTag(t *testing.T) {
	a, st := snapApp(t)
	m := a.Snapshots()

	st.Set("v", "one")
	a.Coordinator().Set("phase", "one")
	if _, err := m.Record("alpha", at(1)); err != nil {
		t.Fatal(err)
	}
	st.Set("v", "two")
	a.Coordinator().Set("phase", "two")
	if _, err := m.Record("beta", at(2)); err != nil {
		t.Fatal(err)
	}
	st.Set("v", "three")
	a.Coordinator().Set("phase", "three")

	// Roll back past the latest snapshot to the named one.
	if err := m.Rollback("alpha"); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get("v"); v != "one" {
		t.Fatalf("component after rollback alpha = %q, want one", v)
	}
	if v, _ := a.Coordinator().Get("phase"); v != "one" {
		t.Fatalf("coordinator after rollback alpha = %q, want one", v)
	}

	// Forward again to a later tag.
	if err := m.Rollback("beta"); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get("v"); v != "two" {
		t.Fatalf("component after rollback beta = %q, want two", v)
	}

	// Duplicate tags: the most recent wins.
	st.Set("v", "four")
	if _, err := m.Record("alpha", at(4)); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback("alpha"); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get("v"); v != "four" {
		t.Fatalf("rollback to duplicated tag = %q, want most recent (four)", v)
	}

	if err := m.Rollback("no-such-tag"); err == nil {
		t.Fatal("rollback to unknown tag succeeded")
	}
}

// TestConcurrentCaptureRollback hammers Record, Rollback, state writes,
// and reads concurrently; run under -race it proves the manager's locking
// holds when the replicator captures while a migration rolls back.
func TestConcurrentCaptureRollback(t *testing.T) {
	a, st := snapApp(t)
	m := a.Snapshots()
	st.Set("v", "seed")
	if _, err := m.Record("base", at(0)); err != nil {
		t.Fatal(err)
	}

	const iters = 300
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := m.Record(fmt.Sprintf("r%d", i%5), at(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// Rolling back to a tag that a concurrent Record may be
			// re-recording: must never corrupt, may legitimately miss.
			_ = m.Rollback("base")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			st.Set("v", fmt.Sprint(i))
			a.Coordinator().Set("k", fmt.Sprint(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			m.Latest()
			m.Len()
			m.Find("base")
		}
	}()
	wg.Wait()

	if m.Len() == 0 {
		t.Fatal("history empty after concurrent run")
	}
	// "base" may have been evicted by the cap under concurrent Records;
	// the latest surviving snapshot must still restore cleanly.
	latest, ok := m.Latest()
	if !ok {
		t.Fatal("no latest snapshot after concurrent run")
	}
	if err := m.Rollback(latest.Tag); err != nil {
		t.Fatal(err)
	}
}

func TestOnRecordHookFires(t *testing.T) {
	a, st := snapApp(t)
	m := a.Snapshots()
	var mu sync.Mutex
	var seen []string
	m.OnRecord(func(ts TaggedSnapshot) {
		mu.Lock()
		seen = append(seen, ts.Tag)
		mu.Unlock()
	})
	st.Set("v", "x")
	if _, err := m.Record("hooked", at(1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "hooked" {
		t.Fatalf("hook saw %v, want [hooked]", seen)
	}
}
