package owl

import (
	"fmt"

	"mdagent/internal/rdf"
)

// MatchMode selects how resource compatibility is decided. The paper
// argues (§3.3) that "simple syntax-based matching puts much strict
// unnecessary constraints, and semantics-based resource matching is much
// preferred"; both are implemented so the ablation benchmark can quantify
// the difference.
type MatchMode int

// Match modes.
const (
	// MatchSyntactic compares resource names/classes textually — the
	// strawman the paper argues against.
	MatchSyntactic MatchMode = iota + 1
	// MatchSemantic relates resources through the ontology's class
	// hierarchy (paper Rule 2: both "printer" types => compatible).
	MatchSemantic
)

func (m MatchMode) String() string {
	switch m {
	case MatchSyntactic:
		return "syntactic"
	case MatchSemantic:
		return "semantic"
	default:
		return "invalid"
	}
}

// Matcher decides resource compatibility against an ontology.
type Matcher struct {
	onto *Ontology
	mode MatchMode
}

// NewMatcher builds a matcher in the given mode.
func NewMatcher(o *Ontology, mode MatchMode) *Matcher {
	return &Matcher{onto: o, mode: mode}
}

// Mode returns the matcher's mode.
func (m *Matcher) Mode() MatchMode { return m.mode }

// Compatible reports whether dst can serve in place of src. Syntactic mode
// requires the exact same class name (and, when both declare a "name"
// attribute, the same name). Semantic mode accepts any dst whose class is
// related to src's through the hierarchy: identical, subclass, superclass,
// or declared equivalent.
func (m *Matcher) Compatible(src, dst Resource) bool {
	switch m.mode {
	case MatchSyntactic:
		if src.Class != dst.Class {
			return false
		}
		sn, sok := src.Attrs["name"]
		dn, dok := dst.Attrs["name"]
		if sok && dok && sn != dn {
			return false
		}
		return true
	case MatchSemantic:
		return m.onto.SubClassOf(dst.Class, src.Class) || m.onto.SubClassOf(src.Class, dst.Class)
	default:
		return false
	}
}

// CanSubstitute reports whether dst may be used as a stand-in for src at
// the destination: it must be compatible and src must admit substitution.
func (m *Matcher) CanSubstitute(src, dst Resource) bool {
	return src.Substitutable && m.Compatible(src, dst)
}

// RebindAction is the planner's verdict for one resource binding after
// migration (paper §3.3: "This requires a resource rebinding mechanism").
type RebindAction int

// Rebind actions.
const (
	// RebindUseLocal binds to an equivalent resource at the destination.
	RebindUseLocal RebindAction = iota + 1
	// RebindCarry transfers the resource bytes with the mobile agent.
	RebindCarry
	// RebindRemote keeps a remote binding to the source host (the paper's
	// "played remotely through URL in the original host").
	RebindRemote
	// RebindImpossible flags a resource that cannot be rebound at all.
	RebindImpossible
)

func (a RebindAction) String() string {
	switch a {
	case RebindUseLocal:
		return "use-local"
	case RebindCarry:
		return "carry"
	case RebindRemote:
		return "remote-url"
	case RebindImpossible:
		return "impossible"
	default:
		return "invalid"
	}
}

// Rebinding is the plan for one source resource.
type Rebinding struct {
	Source Resource
	Action RebindAction
	Target Resource // the destination stand-in when Action == RebindUseLocal
	Reason string   // human-readable explanation (agent decision trace)
}

// PlanRebinding decides how to rebind src given the resources available at
// the destination. Preference order follows the paper: use an equivalent
// local resource when the ontology says one exists; otherwise carry the
// resource if it is transferable; otherwise fall back to a remote binding
// if the resource can be served remotely (data resources); otherwise the
// rebinding is impossible (e.g. a database that is neither transferable
// nor substitutable, with no local twin).
func (m *Matcher) PlanRebinding(src Resource, destAvail []Resource) Rebinding {
	for _, cand := range destAvail {
		if m.CanSubstitute(src, cand) {
			return Rebinding{
				Source: src,
				Action: RebindUseLocal,
				Target: cand,
				Reason: fmt.Sprintf("%s at destination is %s-compatible with %s", cand.ID, m.mode, src.ID),
			}
		}
	}
	if src.Transferable {
		return Rebinding{
			Source: src,
			Action: RebindCarry,
			Reason: fmt.Sprintf("no destination equivalent; %s is transferable (%d bytes)", src.ID, src.SizeBytes),
		}
	}
	if m.onto.IsA(src.Term(), dataClass) {
		return Rebinding{
			Source: src,
			Action: RebindRemote,
			Reason: fmt.Sprintf("%s is untransferable data; serving via URL from host %s", src.ID, src.Host),
		}
	}
	return Rebinding{
		Source: src,
		Action: RebindImpossible,
		Reason: fmt.Sprintf("%s is neither substitutable here, transferable, nor remotely servable", src.ID),
	}
}

// dataClass is the imcl:Data class; untransferable resources under it can
// still be served remotely by URL from the source host.
var dataClass = rdf.IMCL("Data")
