// Package owl implements the OWL subset MDAgent uses to describe and match
// resources (paper §4.4). The paper models resources and their
// inter-relations in OWL "as it not only supports resource matching
// semantically, but also facilitates the reasoning process"; this package
// provides class hierarchies with subClassOf closure, object/datatype
// properties with OWL characteristics (transitive, symmetric, inverse),
// OWL-QL-style conjunctive queries, the paper's resource description axes
// (Transferable × Substitutable), and the semantic compatibility matcher
// used for resource rebinding after migration.
package owl

import (
	"fmt"

	"mdagent/internal/rdf"
	"mdagent/internal/rules"
)

// Ontology wraps an RDF graph with OWL-aware operations. It is safe for
// concurrent use to the extent the underlying graph is.
type Ontology struct {
	g  *rdf.Graph
	ns *rdf.Namespaces
}

// New returns an empty ontology with the standard namespaces bound.
func New() *Ontology {
	return &Ontology{g: rdf.NewGraph(), ns: rdf.NewNamespaces()}
}

// FromGraph wraps an existing graph (e.g. parsed from Turtle).
func FromGraph(g *rdf.Graph, ns *rdf.Namespaces) *Ontology {
	if ns == nil {
		ns = rdf.NewNamespaces()
	}
	return &Ontology{g: g, ns: ns}
}

// Graph exposes the underlying triple store.
func (o *Ontology) Graph() *rdf.Graph { return o.g }

// Namespaces exposes the namespace table.
func (o *Ontology) Namespaces() *rdf.Namespaces { return o.ns }

// DefineClass declares class as an owl:Class with the given superclasses.
func (o *Ontology) DefineClass(class rdf.Term, parents ...rdf.Term) {
	o.g.Add(rdf.T(class, rdf.RDFType, rdf.OWLClass))
	for _, p := range parents {
		o.g.Add(rdf.T(class, rdf.RDFSSubClassOf, p))
	}
}

// PropertyTrait configures a property definition.
type PropertyTrait func(o *Ontology, p rdf.Term)

// Transitive marks the property owl:TransitiveProperty (paper Fig. 5:
// locatedIn is transitive).
func Transitive() PropertyTrait {
	return func(o *Ontology, p rdf.Term) {
		o.g.Add(rdf.T(p, rdf.RDFType, rdf.OWLTransitiveProp))
	}
}

// Symmetric marks the property owl:SymmetricProperty.
func Symmetric() PropertyTrait {
	return func(o *Ontology, p rdf.Term) {
		o.g.Add(rdf.T(p, rdf.RDFType, rdf.OWLSymmetricProp))
	}
}

// InverseOf declares q as the inverse property of p.
func InverseOf(q rdf.Term) PropertyTrait {
	return func(o *Ontology, p rdf.Term) {
		o.g.Add(rdf.T(p, rdf.OWLInverseOf, q))
	}
}

// Domain declares the property's rdfs:domain.
func Domain(c rdf.Term) PropertyTrait {
	return func(o *Ontology, p rdf.Term) {
		o.g.Add(rdf.T(p, rdf.RDFSDomain, c))
	}
}

// Range declares the property's rdfs:range.
func Range(c rdf.Term) PropertyTrait {
	return func(o *Ontology, p rdf.Term) {
		o.g.Add(rdf.T(p, rdf.RDFSRange, c))
	}
}

// DefineObjectProperty declares p as an owl:ObjectProperty with traits.
func (o *Ontology) DefineObjectProperty(p rdf.Term, traits ...PropertyTrait) {
	o.g.Add(rdf.T(p, rdf.RDFType, rdf.OWLObjectProperty))
	for _, t := range traits {
		t(o, p)
	}
}

// DefineDatatypeProperty declares p as an owl:DatatypeProperty.
func (o *Ontology) DefineDatatypeProperty(p rdf.Term, traits ...PropertyTrait) {
	o.g.Add(rdf.T(p, rdf.RDFType, rdf.OWLDatatypeProp))
	for _, t := range traits {
		t(o, p)
	}
}

// Assert adds a ground statement.
func (o *Ontology) Assert(s, p, obj rdf.Term) { o.g.Add(rdf.T(s, p, obj)) }

// AssertType types an individual.
func (o *Ontology) AssertType(ind, class rdf.Term) {
	o.g.Add(rdf.T(ind, rdf.RDFType, class))
}

// SubClassOf reports whether a is b or a (transitive) subclass of b.
func (o *Ontology) SubClassOf(a, b rdf.Term) bool {
	if a == b || b == rdf.OWLThing {
		return true
	}
	seen := map[rdf.Term]bool{a: true}
	frontier := []rdf.Term{a}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, sup := range o.g.Objects(cur, rdf.RDFSSubClassOf) {
			if sup == b {
				return true
			}
			if !seen[sup] {
				seen[sup] = true
				frontier = append(frontier, sup)
			}
		}
		// equivalentClass links count both ways.
		for _, eq := range o.equivalents(cur) {
			if eq == b {
				return true
			}
			if !seen[eq] {
				seen[eq] = true
				frontier = append(frontier, eq)
			}
		}
	}
	return false
}

func (o *Ontology) equivalents(c rdf.Term) []rdf.Term {
	out := o.g.Objects(c, rdf.OWLEquivalentClass)
	out = append(out, o.g.Subjects(rdf.OWLEquivalentClass, c)...)
	return out
}

// TypesOf returns the direct and inherited classes of an individual.
func (o *Ontology) TypesOf(ind rdf.Term) []rdf.Term {
	seen := make(map[rdf.Term]bool)
	var out []rdf.Term
	var frontier []rdf.Term
	add := func(c rdf.Term) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
			frontier = append(frontier, c)
		}
	}
	for _, c := range o.g.Objects(ind, rdf.RDFType) {
		add(c)
	}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, sup := range o.g.Objects(cur, rdf.RDFSSubClassOf) {
			add(sup)
		}
		for _, eq := range o.equivalents(cur) {
			add(eq)
		}
	}
	return out
}

// IsA reports whether individual ind belongs to class (directly or via the
// class hierarchy).
func (o *Ontology) IsA(ind, class rdf.Term) bool {
	for _, c := range o.g.Objects(ind, rdf.RDFType) {
		if o.SubClassOf(c, class) {
			return true
		}
	}
	return false
}

// Materialize computes the closure of OWL property semantics — transitive
// properties, symmetric properties and inverse pairs — plus rdf:type
// inheritance through rdfs:subClassOf, adding the entailed triples to the
// graph. It returns the number of triples added. Materialize is idempotent.
func (o *Ontology) Materialize() int {
	added := 0
	for {
		round := 0
		round += o.materializeTransitive()
		round += o.materializeSymmetric()
		round += o.materializeInverse()
		round += o.materializeTypeInheritance()
		added += round
		if round == 0 {
			return added
		}
	}
}

func (o *Ontology) materializeTransitive() int {
	added := 0
	for _, p := range o.g.Subjects(rdf.RDFType, rdf.OWLTransitiveProp) {
		// Repeated squaring until stable for this property.
		for {
			n := 0
			edges := o.g.Match(rdf.Triple{P: p})
			index := make(map[rdf.Term][]rdf.Term, len(edges))
			for _, e := range edges {
				index[e.S] = append(index[e.S], e.O)
			}
			for _, e := range edges {
				for _, next := range index[e.O] {
					if o.g.Add(rdf.T(e.S, p, next)) {
						n++
					}
				}
			}
			added += n
			if n == 0 {
				break
			}
		}
	}
	return added
}

func (o *Ontology) materializeSymmetric() int {
	added := 0
	for _, p := range o.g.Subjects(rdf.RDFType, rdf.OWLSymmetricProp) {
		for _, e := range o.g.Match(rdf.Triple{P: p}) {
			if o.g.Add(rdf.T(e.O, p, e.S)) {
				added++
			}
		}
	}
	return added
}

func (o *Ontology) materializeInverse() int {
	added := 0
	for _, link := range o.g.Match(rdf.Triple{P: rdf.OWLInverseOf}) {
		p, q := link.S, link.O
		for _, e := range o.g.Match(rdf.Triple{P: p}) {
			if o.g.Add(rdf.T(e.O, q, e.S)) {
				added++
			}
		}
		for _, e := range o.g.Match(rdf.Triple{P: q}) {
			if o.g.Add(rdf.T(e.O, p, e.S)) {
				added++
			}
		}
	}
	return added
}

func (o *Ontology) materializeTypeInheritance() int {
	added := 0
	for _, tt := range o.g.Match(rdf.Triple{P: rdf.RDFType}) {
		for _, sup := range o.g.Objects(tt.O, rdf.RDFSSubClassOf) {
			if o.g.Add(rdf.T(tt.S, rdf.RDFType, sup)) {
				added++
			}
		}
	}
	return added
}

// Query answers an OWL-QL-style conjunctive query: each pattern may contain
// variables, and the result is every binding satisfying all patterns.
func (o *Ontology) Query(patterns []rdf.Triple) []rdf.Binding {
	return o.g.Solve(patterns)
}

// ParseQuery parses a textual conjunctive query in the paper's pattern
// syntax, e.g. "(?r rdf:type imcl:Printer), (?r imcl:locatedIn ?room)".
func (o *Ontology) ParseQuery(src string) ([]rdf.Triple, error) {
	// Reuse the rule parser by wrapping the patterns in a dummy rule.
	return ParsePatterns(src, o.ns)
}

// QueryText parses and runs a textual query in one call.
func (o *Ontology) QueryText(src string) ([]rdf.Binding, error) {
	ps, err := o.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return o.Query(ps), nil
}

// ParsePatterns parses comma-separated (s p o) patterns with ?variables,
// resolving qualified names against ns. The syntax is shared with rule
// bodies (internal/rules).
func ParsePatterns(src string, ns *rdf.Namespaces) ([]rdf.Triple, error) {
	ps, err := rules.ParsePatterns(src, ns)
	if err != nil {
		return nil, fmt.Errorf("owl: %w", err)
	}
	return ps, nil
}
