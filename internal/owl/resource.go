package owl

import (
	"fmt"
	"sort"

	"mdagent/internal/rdf"
)

// The paper's §4.4 resource axes: "Some are transferable, others are not;
// some can be easily substituted, others can not. For example, a printer is
// not transferable but can be substituted while database is neither
// transferable nor easily substituted, and a PDA is transferable but not
// easily to be substituted."
//
// Resource describes one concrete resource instance on a host.
type Resource struct {
	ID            string            // individual local name, e.g. "hpLaserJet-821"
	Class         rdf.Term          // ontology class, e.g. imcl:Printer
	Transferable  bool              // can the bytes/device move with the app?
	Substitutable bool              // can an equivalent at the destination stand in?
	Host          string            // owning host id
	Location      string            // room / space the resource is located in
	SizeBytes     int64             // payload size when transferable (0 otherwise)
	Attrs         map[string]string // free-form attributes (model, format, ...)
}

// Term returns the individual's IRI term in the imcl namespace.
func (r Resource) Term() rdf.Term { return rdf.IMCL(r.ID) }

// Validate checks the description is usable.
func (r Resource) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("owl: resource has no ID")
	}
	if r.Class.Zero() {
		return fmt.Errorf("owl: resource %s has no class", r.ID)
	}
	if r.Host == "" {
		return fmt.Errorf("owl: resource %s has no host", r.ID)
	}
	if r.SizeBytes < 0 {
		return fmt.Errorf("owl: resource %s has negative size", r.ID)
	}
	return nil
}

// Vocabulary properties used by resource descriptions.
var (
	PropTransferable  = rdf.IMCL("transferable")
	PropSubstitutable = rdf.IMCL("substitutable")
	PropHostedOn      = rdf.IMCL("hostedOn")
	PropLocatedIn     = rdf.IMCL("locatedIn")
	PropSizeBytes     = rdf.IMCL("sizeBytes")
	PropAttrPrefix    = rdf.IMCLNS + "attr-"
)

// Triples renders the resource description as RDF, mirroring the paper's
// Fig. 5 OWL illustration.
func (r Resource) Triples() []rdf.Triple {
	ind := r.Term()
	out := []rdf.Triple{
		rdf.T(ind, rdf.RDFType, r.Class),
		rdf.T(ind, PropTransferable, rdf.Bool(r.Transferable)),
		rdf.T(ind, PropSubstitutable, rdf.Bool(r.Substitutable)),
		rdf.T(ind, PropHostedOn, rdf.IMCL(r.Host)),
	}
	if r.Location != "" {
		out = append(out, rdf.T(ind, PropLocatedIn, rdf.IMCL(r.Location)))
	}
	if r.SizeBytes > 0 {
		out = append(out, rdf.T(ind, PropSizeBytes, rdf.Integer(r.SizeBytes)))
	}
	keys := make([]string, 0, len(r.Attrs))
	for k := range r.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, rdf.T(ind, rdf.IRI(PropAttrPrefix+k), rdf.Lit(r.Attrs[k])))
	}
	return out
}

// AddResource asserts the resource's description into the ontology.
func (o *Ontology) AddResource(r Resource) error {
	if err := r.Validate(); err != nil {
		return err
	}
	for _, tr := range r.Triples() {
		o.g.Add(tr)
	}
	return nil
}

// ResourceFromGraph reconstructs a resource description from the ontology.
func (o *Ontology) ResourceFromGraph(id string) (Resource, error) {
	ind := rdf.IMCL(id)
	types := o.g.Objects(ind, rdf.RDFType)
	if len(types) == 0 {
		return Resource{}, fmt.Errorf("owl: no such resource %q", id)
	}
	r := Resource{ID: id, Attrs: map[string]string{}}
	// Prefer the most specific type: one that is a subclass of all others.
	r.Class = types[0]
	for _, t := range types[1:] {
		if o.SubClassOf(t, r.Class) {
			r.Class = t
		}
	}
	if v, ok := o.g.FirstObject(ind, PropTransferable); ok {
		r.Transferable, _ = v.AsBool()
	}
	if v, ok := o.g.FirstObject(ind, PropSubstitutable); ok {
		r.Substitutable, _ = v.AsBool()
	}
	if v, ok := o.g.FirstObject(ind, PropHostedOn); ok {
		r.Host = localName(v)
	}
	if v, ok := o.g.FirstObject(ind, PropLocatedIn); ok {
		r.Location = localName(v)
	}
	if v, ok := o.g.FirstObject(ind, PropSizeBytes); ok {
		r.SizeBytes, _ = v.AsInt()
	}
	for _, tr := range o.g.Match(rdf.Triple{S: ind}) {
		if tr.P.Kind == rdf.KindIRI && len(tr.P.Value) > len(PropAttrPrefix) &&
			tr.P.Value[:len(PropAttrPrefix)] == PropAttrPrefix {
			r.Attrs[tr.P.Value[len(PropAttrPrefix):]] = tr.O.Value
		}
	}
	if err := r.Validate(); err != nil {
		return Resource{}, err
	}
	return r, nil
}

// ResourcesOnHost lists the resource ids described as hosted on host.
func (o *Ontology) ResourcesOnHost(host string) []string {
	subs := o.g.Subjects(PropHostedOn, rdf.IMCL(host))
	out := make([]string, 0, len(subs))
	for _, s := range subs {
		out = append(out, localName(s))
	}
	sort.Strings(out)
	return out
}

func localName(t rdf.Term) string {
	if t.Kind != rdf.KindIRI {
		return t.Value
	}
	s := t.Value
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '#' || s[i] == '/' {
			return s[i+1:]
		}
	}
	return s
}

// StandardResourceClasses declares the class tree used throughout the
// examples and benchmarks, mirroring the paper's running examples (§4.4):
// printers (substitutable, untransferable), databases (neither), PDAs
// (transferable, not substitutable), media files, displays, projectors.
func (o *Ontology) StandardResourceClasses() {
	res := rdf.IMCL("Resource")
	o.DefineClass(res)
	for _, c := range []string{"Device", "Data", "Service"} {
		o.DefineClass(rdf.IMCL(c), res)
	}
	o.DefineClass(rdf.IMCL("Printer"), rdf.IMCL("Device"))
	o.DefineClass(rdf.IMCL("ColorPrinter"), rdf.IMCL("Printer"))
	o.DefineClass(rdf.IMCL("LaserPrinter"), rdf.IMCL("Printer"))
	o.DefineClass(rdf.IMCL("Display"), rdf.IMCL("Device"))
	o.DefineClass(rdf.IMCL("Projector"), rdf.IMCL("Display"))
	o.DefineClass(rdf.IMCL("PDA"), rdf.IMCL("Device"))
	o.DefineClass(rdf.IMCL("Database"), rdf.IMCL("Service"))
	o.DefineClass(rdf.IMCL("MediaFile"), rdf.IMCL("Data"))
	o.DefineClass(rdf.IMCL("MusicFile"), rdf.IMCL("MediaFile"))
	o.DefineClass(rdf.IMCL("SlideDeck"), rdf.IMCL("Data"))
	o.DefineClass(rdf.IMCL("Document"), rdf.IMCL("Data"))
	o.DefineObjectProperty(PropLocatedIn, Transitive())
	o.DefineObjectProperty(PropHostedOn)
	o.DefineDatatypeProperty(PropTransferable)
	o.DefineDatatypeProperty(PropSubstitutable)
	o.DefineDatatypeProperty(PropSizeBytes)
}
