package owl

import (
	"testing"
	"testing/quick"

	"mdagent/internal/rdf"
)

// Paper §4.4 exemplars:
//
//	printer:  substitutable, not transferable
//	database: neither substitutable nor transferable
//	PDA:      transferable, not substitutable
func printerRes(id, host, model string) Resource {
	return Resource{
		ID: id, Class: rdf.IMCL("Printer"), Substitutable: true,
		Host: host, Attrs: map[string]string{"name": model},
	}
}

func TestSemanticCompatibleAcrossHierarchy(t *testing.T) {
	o := stdOnto(t)
	m := NewMatcher(o, MatchSemantic)
	src := printerRes("srcPrinter", "hostA", "hp LaserJet 4")
	dstSub := Resource{ID: "d1", Class: rdf.IMCL("ColorPrinter"), Substitutable: true, Host: "hostB",
		Attrs: map[string]string{"name": "Canon iR"}}
	dstSuper := Resource{ID: "d2", Class: rdf.IMCL("Device"), Host: "hostB"}
	dstOther := Resource{ID: "d3", Class: rdf.IMCL("Database"), Host: "hostB"}

	if !m.Compatible(src, dstSub) {
		t.Error("subclass printer not compatible semantically")
	}
	if !m.Compatible(src, dstSuper) {
		t.Error("superclass device not compatible semantically")
	}
	if m.Compatible(src, dstOther) {
		t.Error("database compatible with printer")
	}
}

func TestSyntacticRequiresExactClassAndName(t *testing.T) {
	o := stdOnto(t)
	m := NewMatcher(o, MatchSyntactic)
	src := printerRes("srcPrinter", "hostA", "hp LaserJet 4")
	sameClassDiffName := printerRes("d1", "hostB", "Canon iR")
	sameEverything := printerRes("d2", "hostB", "hp LaserJet 4")
	subclass := Resource{ID: "d3", Class: rdf.IMCL("ColorPrinter"), Substitutable: true, Host: "hostB"}

	if m.Compatible(src, sameClassDiffName) {
		t.Error("syntactic matched different names")
	}
	if !m.Compatible(src, sameEverything) {
		t.Error("syntactic rejected identical resource")
	}
	if m.Compatible(src, subclass) {
		t.Error("syntactic matched subclass (no hierarchy knowledge)")
	}
	// When either side lacks a name attribute, class equality suffices.
	noName := Resource{ID: "d4", Class: rdf.IMCL("Printer"), Substitutable: true, Host: "hostB"}
	if !m.Compatible(src, noName) {
		t.Error("syntactic rejected same-class resource without name")
	}
}

func TestSemanticBeatsSyntacticOnRenamedResources(t *testing.T) {
	// The paper's §3.3 motivation: "different hosts often have the same
	// resources but with different names". Candidate printers at the
	// destination carry different model names and subclasses; semantic
	// matching must find strictly more matches than syntactic.
	o := stdOnto(t)
	src := printerRes("srcPrinter", "hostA", "hp LaserJet 4")
	dest := []Resource{
		printerRes("p1", "hostB", "Canon iR2020"),
		{ID: "p2", Class: rdf.IMCL("ColorPrinter"), Substitutable: true, Host: "hostB",
			Attrs: map[string]string{"name": "Xerox Phaser"}},
		{ID: "db", Class: rdf.IMCL("Database"), Host: "hostB"},
	}
	sem := NewMatcher(o, MatchSemantic)
	syn := NewMatcher(o, MatchSyntactic)
	semHits, synHits := 0, 0
	for _, d := range dest {
		if sem.Compatible(src, d) {
			semHits++
		}
		if syn.Compatible(src, d) {
			synHits++
		}
	}
	if semHits != 2 || synHits != 0 {
		t.Fatalf("semantic hits = %d (want 2), syntactic hits = %d (want 0)", semHits, synHits)
	}
}

func TestCanSubstituteRespectsSubstitutability(t *testing.T) {
	o := stdOnto(t)
	m := NewMatcher(o, MatchSemantic)
	// A database is compatible with another database but NOT substitutable.
	src := Resource{ID: "db1", Class: rdf.IMCL("Database"), Host: "hostA"}
	dst := Resource{ID: "db2", Class: rdf.IMCL("Database"), Host: "hostB"}
	if !m.Compatible(src, dst) {
		t.Fatal("same-class databases not compatible")
	}
	if m.CanSubstitute(src, dst) {
		t.Fatal("unsubstitutable database substituted")
	}
}

func TestPlanRebindingUseLocal(t *testing.T) {
	o := stdOnto(t)
	m := NewMatcher(o, MatchSemantic)
	src := printerRes("srcPrinter", "hostA", "hp")
	plan := m.PlanRebinding(src, []Resource{printerRes("dstPrinter", "hostB", "canon")})
	if plan.Action != RebindUseLocal {
		t.Fatalf("action = %v, want use-local (%s)", plan.Action, plan.Reason)
	}
	if plan.Target.ID != "dstPrinter" {
		t.Fatalf("target = %s", plan.Target.ID)
	}
}

func TestPlanRebindingCarryTransferable(t *testing.T) {
	o := stdOnto(t)
	m := NewMatcher(o, MatchSemantic)
	// A PDA is transferable but not substitutable.
	src := Resource{ID: "pda1", Class: rdf.IMCL("PDA"), Transferable: true, Host: "hostA", SizeBytes: 1 << 20}
	plan := m.PlanRebinding(src, []Resource{printerRes("dstPrinter", "hostB", "x")})
	if plan.Action != RebindCarry {
		t.Fatalf("action = %v, want carry (%s)", plan.Action, plan.Reason)
	}
}

func TestPlanRebindingRemoteURLForData(t *testing.T) {
	o := stdOnto(t)
	m := NewMatcher(o, MatchSemantic)
	// The Fig. 8 scenario: music files absent at the destination are
	// "played remotely through URL in the original host". Model the music
	// as untransferable data (e.g. licensing pins it to the source).
	src := Resource{ID: "song1", Class: rdf.IMCL("MusicFile"), Host: "hostA", SizeBytes: 4 << 20}
	o.AssertType(src.Term(), src.Class)
	plan := m.PlanRebinding(src, nil)
	if plan.Action != RebindRemote {
		t.Fatalf("action = %v, want remote-url (%s)", plan.Action, plan.Reason)
	}
}

func TestPlanRebindingImpossible(t *testing.T) {
	o := stdOnto(t)
	m := NewMatcher(o, MatchSemantic)
	// Database: neither transferable nor substitutable, no local twin.
	src := Resource{ID: "db1", Class: rdf.IMCL("Database"), Host: "hostA"}
	o.AssertType(src.Term(), src.Class)
	plan := m.PlanRebinding(src, nil)
	if plan.Action != RebindImpossible {
		t.Fatalf("action = %v, want impossible (%s)", plan.Action, plan.Reason)
	}
}

func TestResourceTriplesRoundTrip(t *testing.T) {
	o := stdOnto(t)
	src := Resource{
		ID: "hp821", Class: rdf.IMCL("ColorPrinter"),
		Substitutable: true, Transferable: false,
		Host: "hostA", Location: "office821", SizeBytes: 0,
		Attrs: map[string]string{"name": "hp LaserJet", "dpi": "600"},
	}
	if err := o.AddResource(src); err != nil {
		t.Fatal(err)
	}
	got, err := o.ResourceFromGraph("hp821")
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != src.Class || got.Host != src.Host || got.Location != src.Location {
		t.Fatalf("round trip = %+v", got)
	}
	if !got.Substitutable || got.Transferable {
		t.Fatalf("flags lost: %+v", got)
	}
	if got.Attrs["name"] != "hp LaserJet" || got.Attrs["dpi"] != "600" {
		t.Fatalf("attrs lost: %v", got.Attrs)
	}
}

func TestResourceFromGraphPrefersMostSpecificType(t *testing.T) {
	o := stdOnto(t)
	r := Resource{ID: "hp", Class: rdf.IMCL("ColorPrinter"), Substitutable: true, Host: "h"}
	if err := o.AddResource(r); err != nil {
		t.Fatal(err)
	}
	o.Materialize() // adds Printer, Device, Resource types
	got, err := o.ResourceFromGraph("hp")
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != rdf.IMCL("ColorPrinter") {
		t.Fatalf("class = %v, want most specific ColorPrinter", got.Class)
	}
}

func TestResourceValidate(t *testing.T) {
	cases := []struct {
		name string
		r    Resource
	}{
		{"noID", Resource{Class: rdf.IMCL("Printer"), Host: "h"}},
		{"noClass", Resource{ID: "x", Host: "h"}},
		{"noHost", Resource{ID: "x", Class: rdf.IMCL("Printer")}},
		{"negativeSize", Resource{ID: "x", Class: rdf.IMCL("Printer"), Host: "h", SizeBytes: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.r.Validate(); err == nil {
				t.Fatal("invalid resource accepted")
			}
		})
	}
	if err := NewMatcher(stdOnto(t), MatchSemantic).onto.AddResource(Resource{}); err == nil {
		t.Fatal("AddResource accepted invalid resource")
	}
}

func TestResourcesOnHost(t *testing.T) {
	o := stdOnto(t)
	for _, id := range []string{"b-res", "a-res"} {
		if err := o.AddResource(Resource{ID: id, Class: rdf.IMCL("Printer"), Host: "hostA"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddResource(Resource{ID: "other", Class: rdf.IMCL("Printer"), Host: "hostB"}); err != nil {
		t.Fatal(err)
	}
	got := o.ResourcesOnHost("hostA")
	if len(got) != 2 || got[0] != "a-res" || got[1] != "b-res" {
		t.Fatalf("ResourcesOnHost = %v, want sorted [a-res b-res]", got)
	}
}

func TestMatchModeString(t *testing.T) {
	if MatchSyntactic.String() != "syntactic" || MatchSemantic.String() != "semantic" {
		t.Fatal("MatchMode.String wrong")
	}
	if MatchMode(0).String() != "invalid" {
		t.Fatal("zero MatchMode not invalid")
	}
	for _, a := range []RebindAction{RebindUseLocal, RebindCarry, RebindRemote, RebindImpossible} {
		if a.String() == "invalid" {
			t.Fatalf("action %d renders invalid", a)
		}
	}
	if RebindAction(0).String() != "invalid" {
		t.Fatal("zero RebindAction not invalid")
	}
}

// Property: semantic compatibility is symmetric (subclass either way).
func TestSemanticCompatibilitySymmetric(t *testing.T) {
	o := stdOnto(t)
	m := NewMatcher(o, MatchSemantic)
	classes := []rdf.Term{
		rdf.IMCL("Resource"), rdf.IMCL("Device"), rdf.IMCL("Printer"),
		rdf.IMCL("ColorPrinter"), rdf.IMCL("Database"), rdf.IMCL("MusicFile"),
	}
	f := func(i, j uint8) bool {
		a := Resource{ID: "a", Class: classes[int(i)%len(classes)], Host: "h1"}
		b := Resource{ID: "b", Class: classes[int(j)%len(classes)], Host: "h2"}
		return m.Compatible(a, b) == m.Compatible(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
