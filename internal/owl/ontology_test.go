package owl

import (
	"testing"

	"mdagent/internal/rdf"
)

func stdOnto(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	o.StandardResourceClasses()
	return o
}

func TestSubClassOfClosure(t *testing.T) {
	o := stdOnto(t)
	tests := []struct {
		a, b string
		want bool
	}{
		{"ColorPrinter", "Printer", true},
		{"ColorPrinter", "Device", true},
		{"ColorPrinter", "Resource", true},
		{"Printer", "ColorPrinter", false},
		{"Printer", "Printer", true},
		{"Database", "Device", false},
		{"MusicFile", "Data", true},
	}
	for _, tc := range tests {
		if got := o.SubClassOf(rdf.IMCL(tc.a), rdf.IMCL(tc.b)); got != tc.want {
			t.Errorf("SubClassOf(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	// Everything is a subclass of owl:Thing.
	if !o.SubClassOf(rdf.IMCL("Database"), rdf.OWLThing) {
		t.Error("SubClassOf(Database, owl:Thing) = false")
	}
}

func TestEquivalentClassBridging(t *testing.T) {
	o := stdOnto(t)
	// A foreign vocabulary's "Imprimante" is declared equivalent to Printer.
	o.DefineClass(rdf.IMCL("Imprimante"))
	o.Assert(rdf.IMCL("Imprimante"), rdf.OWLEquivalentClass, rdf.IMCL("Printer"))
	if !o.SubClassOf(rdf.IMCL("Imprimante"), rdf.IMCL("Device")) {
		t.Error("equivalence did not bridge to superclass")
	}
	// Symmetric direction: declared object side also reaches Device.
	o.DefineClass(rdf.IMCL("Drucker"))
	o.Assert(rdf.IMCL("Printer"), rdf.OWLEquivalentClass, rdf.IMCL("Drucker"))
	if !o.SubClassOf(rdf.IMCL("Drucker"), rdf.IMCL("Device")) {
		t.Error("reverse equivalence did not bridge")
	}
}

func TestIsAAndTypesOf(t *testing.T) {
	o := stdOnto(t)
	o.AssertType(rdf.IMCL("hp821"), rdf.IMCL("ColorPrinter"))
	if !o.IsA(rdf.IMCL("hp821"), rdf.IMCL("Printer")) {
		t.Error("IsA(hp821, Printer) = false")
	}
	if !o.IsA(rdf.IMCL("hp821"), rdf.IMCL("Resource")) {
		t.Error("IsA(hp821, Resource) = false")
	}
	if o.IsA(rdf.IMCL("hp821"), rdf.IMCL("Database")) {
		t.Error("IsA(hp821, Database) = true")
	}
	types := o.TypesOf(rdf.IMCL("hp821"))
	want := map[string]bool{"ColorPrinter": true, "Printer": true, "Device": true, "Resource": true}
	found := 0
	for _, c := range types {
		if want[localName(c)] {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("TypesOf = %v, want all of %v", types, want)
	}
}

func TestMaterializeTransitive(t *testing.T) {
	o := stdOnto(t)
	// Fig. 5: locatedIn is a TransitiveProperty.
	o.Assert(rdf.IMCL("printer1"), PropLocatedIn, rdf.IMCL("office821"))
	o.Assert(rdf.IMCL("office821"), PropLocatedIn, rdf.IMCL("floor8"))
	added := o.Materialize()
	if added == 0 {
		t.Fatal("Materialize added nothing")
	}
	if !o.Graph().Has(rdf.T(rdf.IMCL("printer1"), PropLocatedIn, rdf.IMCL("floor8"))) {
		t.Fatal("transitive locatedIn fact missing")
	}
	if again := o.Materialize(); again != 0 {
		t.Fatalf("second Materialize added %d, want 0 (idempotent)", again)
	}
}

func TestMaterializeSymmetricAndInverse(t *testing.T) {
	o := New()
	adjacent := rdf.IMCL("adjacentTo")
	o.DefineObjectProperty(adjacent, Symmetric())
	o.Assert(rdf.IMCL("room1"), adjacent, rdf.IMCL("room2"))

	contains := rdf.IMCL("contains")
	within := rdf.IMCL("within")
	o.DefineObjectProperty(contains, InverseOf(within))
	o.Assert(rdf.IMCL("floor8"), contains, rdf.IMCL("office821"))
	o.Assert(rdf.IMCL("office822"), within, rdf.IMCL("floor8"))

	o.Materialize()
	if !o.Graph().Has(rdf.T(rdf.IMCL("room2"), adjacent, rdf.IMCL("room1"))) {
		t.Error("symmetric closure missing")
	}
	if !o.Graph().Has(rdf.T(rdf.IMCL("office821"), within, rdf.IMCL("floor8"))) {
		t.Error("inverse (forward) closure missing")
	}
	if !o.Graph().Has(rdf.T(rdf.IMCL("floor8"), contains, rdf.IMCL("office822"))) {
		t.Error("inverse (backward) closure missing")
	}
}

func TestMaterializeTypeInheritance(t *testing.T) {
	o := stdOnto(t)
	o.AssertType(rdf.IMCL("hp821"), rdf.IMCL("ColorPrinter"))
	o.Materialize()
	if !o.Graph().Has(rdf.T(rdf.IMCL("hp821"), rdf.RDFType, rdf.IMCL("Resource"))) {
		t.Fatal("rdf:type not propagated to ancestor classes")
	}
}

func TestDomainRangeTraits(t *testing.T) {
	o := New()
	p := rdf.IMCL("drives")
	o.DefineObjectProperty(p, Domain(rdf.IMCL("Person")), Range(rdf.IMCL("Car")))
	if !o.Graph().Has(rdf.T(p, rdf.RDFSDomain, rdf.IMCL("Person"))) {
		t.Error("domain missing")
	}
	if !o.Graph().Has(rdf.T(p, rdf.RDFSRange, rdf.IMCL("Car"))) {
		t.Error("range missing")
	}
}

func TestQueryConjunctive(t *testing.T) {
	o := stdOnto(t)
	o.AssertType(rdf.IMCL("hp821"), rdf.IMCL("Printer"))
	o.Assert(rdf.IMCL("hp821"), PropLocatedIn, rdf.IMCL("office821"))
	o.AssertType(rdf.IMCL("hp822"), rdf.IMCL("Printer"))
	o.Assert(rdf.IMCL("hp822"), PropLocatedIn, rdf.IMCL("office822"))

	bs, err := o.QueryText(`(?r rdf:type imcl:Printer), (?r imcl:locatedIn ?room)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("query returned %d bindings, want 2", len(bs))
	}
}

func TestQueryTextErrors(t *testing.T) {
	o := New()
	if _, err := o.QueryText(``); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := o.QueryText(`(?r rdf:type imcl:Printer), lessThan(?x, 3)`); err == nil {
		t.Fatal("builtin in query accepted")
	}
	if _, err := o.QueryText(`(?r zz:type imcl:Printer)`); err == nil {
		t.Fatal("unknown prefix accepted")
	}
}

func TestFromGraphWithNilNamespaces(t *testing.T) {
	g := rdf.NewGraph()
	o := FromGraph(g, nil)
	if o.Namespaces() == nil {
		t.Fatal("nil namespaces not defaulted")
	}
	if o.Graph() != g {
		t.Fatal("graph not retained")
	}
}

func TestLocalName(t *testing.T) {
	tests := []struct {
		in   rdf.Term
		want string
	}{
		{rdf.IMCL("hp821"), "hp821"},
		{rdf.IRI("http://example.org/path/thing"), "thing"},
		{rdf.IRI("nohashorslash"), "nohashorslash"},
		{rdf.Lit("plain"), "plain"},
	}
	for _, tc := range tests {
		if got := localName(tc.in); got != tc.want {
			t.Errorf("localName(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
