package cluster

import (
	"fmt"

	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// WriteConcern selects how durable a federation write must be before it
// returns: how many peer centers must synchronously acknowledge the
// pushed record (or snapshot delta). The local copy always lands first;
// the concern only controls how long the writer blocks for replication.
type WriteConcern string

// Write concerns, in increasing durability order.
const (
	// WriteAsync returns as soon as the write lands locally; replication
	// is fire-and-forget push plus anti-entropy (the pre-durability
	// behaviour, and the default). A record written only to a center
	// that dies before its first push is lost.
	WriteAsync WriteConcern = "async"
	// WriteOne blocks until at least one peer center acknowledged the
	// write, so it survives the loss of the writing center.
	WriteOne WriteConcern = "one"
	// WriteQuorum blocks until a majority of the federation (the writing
	// center included) holds the write, so it survives the loss of any
	// minority of centers.
	WriteQuorum WriteConcern = "quorum"
)

// ErrNotDurable reports a durability shortfall: the write landed locally
// (and anti-entropy keeps retrying delivery) but fewer peers than the
// concern requires acknowledged it in time. Aliased from the state
// package so the replication pipeline and packages that must not import
// cluster (migrate, core helpers) check the same sentinel.
var ErrNotDurable = state.ErrNotDurable

// Durability shortfalls normally cross the snapshot wire in-band
// (putSnapshotReply.NotDurable), but any path where the text leaks into
// an error reply should still satisfy errors.Is on the far side.
func init() { transport.RegisterWireSentinel(ErrNotDurable) }

// ParseWriteConcern validates a write-concern string — the flag and
// wire-header boundary. Empty means "use the configured default".
func ParseWriteConcern(s string) (WriteConcern, error) {
	switch WriteConcern(s) {
	case "", WriteAsync:
		return WriteAsync, nil
	case WriteOne:
		return WriteOne, nil
	case WriteQuorum:
		return WriteQuorum, nil
	}
	return "", fmt.Errorf("cluster: unknown write concern %q (want %s, %s or %s)",
		s, WriteAsync, WriteOne, WriteQuorum)
}

// requiredAcks is how many peer acknowledgements a concern demands over
// a federation of 1+peers centers. Quorum counts the local copy: a
// majority of n centers needs n/2 rounded up plus one holders, of which
// the writer itself is one.
func requiredAcks(wc WriteConcern, peers int) int {
	switch wc {
	case WriteOne:
		if peers == 0 {
			return 0 // standalone center: local durability is all there is
		}
		return 1
	case WriteQuorum:
		return (peers + 1) / 2
	}
	return 0
}

// DurabilityEvent describes the outcome of one synchronous-concern write
// attempt (async writes never report). internal/core bridges these onto
// the context kernel as cluster.durable / cluster.degraded events.
type DurabilityEvent struct {
	Key      string       // record key the write targeted
	Concern  WriteConcern // effective concern of the write
	Required int          // peer acks the concern demanded
	Acked    int          // peer acks collected before the verdict
	// Degraded reports that the membership view said too few peer
	// centers were reachable to ever meet the concern, so the write
	// skipped the ack wait entirely and fell back to async replication.
	Degraded bool
	// Durable reports that the concern was met.
	Durable bool
}
