package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mdagent/internal/netsim"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
)

// queuedUpdate reads one rumor straight out of a node's dissemination
// buffer (tests only).
func queuedUpdate(n *Node, id string) (Member, int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	u, ok := n.queue[id]
	if !ok {
		return Member{}, 0, false
	}
	return u.m, u.transmits, true
}

// queueDepth reads a node's buffer depth (tests only).
func queueDepth(n *Node) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// drainQueue charges load() until the buffer is empty, simulating the
// node sending enough messages to exhaust every rumor's budget.
func drainQueue(t *testing.T, n *Node) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if len(n.load().updates) == 0 && queueDepth(n) == 0 {
			return
		}
	}
	t.Fatalf("queue never drained: depth %d", queueDepth(n))
}

// TestPiggybackBounded: outgoing payloads carry at most MaxPiggyback
// updates no matter how large the table is — the O(1) property the
// scale sweep measures.
func TestPiggybackBounded(t *testing.T) {
	r := newGossipRig(t, 1)
	n := r.nodes[0]
	var table []Member
	for i := 0; i < 200; i++ {
		table = append(table, Member{
			ID:          fmt.Sprintf("x%03d", i),
			Endpoint:    fmt.Sprintf("cluster@x%03d", i),
			Space:       "lab",
			State:       StateAlive,
			Incarnation: 1,
		})
	}
	n.applyTable(table)
	if d := queueDepth(n); d != 201 { // 200 learned + self announcement
		t.Fatalf("queue depth = %d, want 201", d)
	}
	for i := 0; i < 2000; i++ {
		load := n.load()
		if len(load.updates) > n.cfg.MaxPiggyback {
			t.Fatalf("message %d carried %d updates, cap is %d", i, len(load.updates), n.cfg.MaxPiggyback)
		}
		if queueDepth(n) == 0 {
			return // every rumor sent its budget and was evicted
		}
	}
	t.Fatalf("buffer never emptied; depth still %d", queueDepth(n))
}

// TestRefutationPreemptsQueuedSuspicion: a refutation (alive at a higher
// incarnation) must replace a queued suspicion about the same member and
// reset its transmit count, so the refutation gets a full budget to
// chase the rumor down.
func TestRefutationPreemptsQueuedSuspicion(t *testing.T) {
	r := newGossipRig(t, 2)
	n := r.nodes[0]
	drainQueue(t, n)

	h2 := r.nodes[1].Self()
	n.applyTable([]Member{{ID: h2.ID, Endpoint: h2.Endpoint, Space: h2.Space, State: StateSuspect, Incarnation: h2.Incarnation}})
	if u, _, ok := queuedUpdate(n, h2.ID); !ok || u.State != StateSuspect {
		t.Fatalf("suspicion not queued: %+v", u)
	}
	// Transmit the suspicion a few times so its budget is partly spent.
	for i := 0; i < 2; i++ {
		n.load()
	}
	if _, tx, _ := queuedUpdate(n, h2.ID); tx != 2 {
		t.Fatalf("suspicion transmits = %d, want 2", tx)
	}

	refutation := Member{ID: h2.ID, Endpoint: h2.Endpoint, Space: h2.Space, State: StateAlive, Incarnation: h2.Incarnation + 1}
	n.applyTable([]Member{refutation})
	u, tx, ok := queuedUpdate(n, h2.ID)
	if !ok {
		t.Fatal("refutation not queued")
	}
	if u.State != StateAlive || u.Incarnation != h2.Incarnation+1 {
		t.Fatalf("queued rumor is %+v, want the refutation", u)
	}
	if tx != 0 {
		t.Fatalf("refutation inherited %d transmits, want a fresh budget", tx)
	}
	// The very next message must carry the refutation, not the suspicion.
	load := n.load()
	for _, m := range load.updates {
		if m.ID == h2.ID {
			if m.State != StateAlive {
				t.Fatalf("next message still carries the suspicion: %+v", m)
			}
			return
		}
	}
	t.Fatal("next message did not carry the refutation at all")
}

// TestLeaveCertificateSurvivesBufferEviction: after a graceful leave the
// certificate is eventually evicted from every dissemination buffer —
// but a node that joins later must still learn of the departure, via
// the full-table bootstrap exchange.
func TestLeaveCertificateSurvivesBufferEviction(t *testing.T) {
	r := newGossipRig(t, 3)
	for i := 0; i < 3; i++ {
		r.tickAll()
	}
	r.nodes[2].Leave()
	waitState(t, r, r.nodes[0], "h3", StateDead)
	waitState(t, r, r.nodes[1], "h3", StateDead)

	// Burn through the survivors' buffers until the certificate (and
	// everything else) has exhausted its retransmit budget.
	drainQueue(t, r.nodes[0])
	drainQueue(t, r.nodes[1])

	// A latecomer joins via h1. Its first probe is answered with the
	// full table (unknown sender -> bootstrap), certificate included.
	host := "h4"
	if _, err := r.net.AddHost(host, "lab", netsim.Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	ep, err := r.fab.Attach(MemberEndpointName(host), host)
	if err != nil {
		t.Fatal(err)
	}
	late := NewNode(Member{ID: host, Space: "lab"}, ep, testConfig())
	late.Join(r.nodes[0].Self())
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, ok := late.Member("h3"); ok && m.State == StateDead {
			return
		}
		if time.Now().After(deadline) {
			m, _ := late.Member("h3")
			t.Fatalf("latecomer never learned the leave certificate (last: %+v)", m)
		}
		late.Tick()
		time.Sleep(time.Millisecond)
	}
}

// TestRotationProbesEveryMemberPerTraversal: shuffled round-robin means
// one traversal of the ring probes every live peer exactly once — the
// bounded worst-case detection time random picking cannot give.
func TestRotationProbesEveryMemberPerTraversal(t *testing.T) {
	r := newGossipRig(t, 6)
	n := r.nodes[0]
	for traversal := 0; traversal < 3; traversal++ {
		seen := map[string]int{}
		for i := 0; i < 5; i++ {
			m, ok := n.nextTarget()
			if !ok {
				t.Fatalf("traversal %d ran out of targets at %d", traversal, i)
			}
			seen[m.ID]++
		}
		if len(seen) != 5 {
			t.Fatalf("traversal %d probed %d distinct peers, want 5: %v", traversal, len(seen), seen)
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("traversal %d probed %s %d times", traversal, id, c)
			}
		}
	}
}

// TestRotationInsertsNewMemberMidTraversal: a member learned while a
// traversal is underway is spliced into the unprobed remainder, so it
// is probed within one traversal of being learned.
func TestRotationInsertsNewMemberMidTraversal(t *testing.T) {
	r := newGossipRig(t, 6)
	n := r.nodes[0]
	// Start a traversal and consume two targets.
	for i := 0; i < 2; i++ {
		if _, ok := n.nextTarget(); !ok {
			t.Fatal("ran out of targets")
		}
	}
	n.Join(Member{ID: "h9", Endpoint: MemberEndpointName("h9"), Space: "lab"})
	// The remainder of this traversal (3 original peers + the insert).
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		m, ok := n.nextTarget()
		if !ok {
			t.Fatal("ran out of targets")
		}
		seen[m.ID] = true
	}
	if !seen["h9"] {
		t.Fatalf("h9 not probed within the traversal it was learned in: %v", seen)
	}
}

// TestChurn500MembersZeroFalseConvictions drives a 500-node cluster on
// the simulated network through kills and joins with bounded
// dissemination, and asserts (a) every change converges everywhere and
// (b) no live member is ever convicted — the false-positive property
// the scale sweep measures at the default suspicion timeout.
func TestChurn500MembersZeroFalseConvictions(t *testing.T) {
	const nHosts = 500
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.WithSeed(11))
	fab := transport.NewLocalFabric(net)
	defer fab.Close()

	cfg := testConfig()
	// Probe failures in this rig are netsim's fail-fast host-down errors,
	// never timeouts — so the timeout can be generous enough that a slow
	// race-instrumented run cannot fake a failed probe of a live node.
	cfg.ProbeTimeout = 5 * time.Second
	cfg.SuspicionTimeout = 250 * time.Millisecond // real-time sweeps; churn rounds below run well inside this
	// A tight anti-entropy cadence closes the cold-start tail in a
	// sixteenth of the default's rounds — this test is about churn
	// correctness, not bootstrap latency (the bench measures that).
	cfg.FullSyncEvery = 16

	nodes := make([]*Node, 0, nHosts)
	addNode := func(i int) *Node {
		host := fmt.Sprintf("m%03d", i)
		if _, err := net.AddHost(host, "lab", netsim.Pentium4_1700(), 0); err != nil {
			t.Fatal(err)
		}
		ep, err := fab.Attach(MemberEndpointName(host), host)
		if err != nil {
			t.Fatal(err)
		}
		n := NewNode(Member{ID: host, Space: "lab"}, ep, cfg)
		// Star seeding: everyone knows the first node, plus its ring
		// predecessor — discovery of the rest rides on gossip.
		if len(nodes) > 0 {
			n.Join(nodes[0].Self())
			n.Join(nodes[len(nodes)-1].Self())
		}
		nodes = append(nodes, n)
		return n
	}
	for i := 0; i < nHosts; i++ {
		addNode(i)
	}

	down := map[string]bool{}
	var mu sync.Mutex
	falseConvictions := map[string]string{}
	watch := func(n *Node) {
		n.OnChange(func(_ *Node, m Member) {
			if m.State != StateDead {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if !down[m.ID] {
				falseConvictions[m.ID] = fmt.Sprintf("%s convicted live %s", n.Self().ID, m.ID)
			}
		})
	}
	for _, n := range nodes {
		watch(n)
	}

	tickLive := func() {
		for _, n := range nodes {
			if !down[n.Self().ID] {
				n.Tick()
			}
		}
	}
	countConverged := func(want int) int {
		got := 0
		for _, n := range nodes {
			if down[n.Self().ID] {
				continue
			}
			if len(n.AliveHosts()) == want {
				got++
			}
		}
		return got
	}
	converge := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for round := 0; ; round++ {
			if round%8 == 0 && countConverged(want) == len(nodes)-len(down) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: %d/%d nodes converged to %d alive",
					what, countConverged(want), len(nodes)-len(down), want)
			}
			tickLive()
		}
	}

	converge(nHosts, "bootstrap")

	// Kill three hosts; every survivor must convict exactly those.
	for _, i := range []int{7, 133, 420} {
		id := nodes[i].Self().ID
		mu.Lock()
		down[id] = true
		mu.Unlock()
		if err := net.SetHostDown(id, true); err != nil {
			t.Fatal(err)
		}
	}
	converge(nHosts-3, "kill")

	// Three more join mid-flight; every survivor must learn them.
	for i := 0; i < 3; i++ {
		watch(addNode(nHosts + i))
	}
	converge(nHosts, "join")

	mu.Lock()
	defer mu.Unlock()
	if len(falseConvictions) != 0 {
		t.Fatalf("false convictions: %v", falseConvictions)
	}
}
