package cluster

// Bounded gossip dissemination (SWIM's piggyback buffer). Every state
// change a node observes — a member learned, escalated, convicted,
// refuted, or leaving — is queued here once per member and rides along
// on the next probes and acks, fewest-transmissions-first, until it has
// been sent λ·log₂N times. Messages carry at most MaxPiggyback updates,
// so gossip payload size is O(1) in cluster size where the pre-PR 7
// full-table piggyback was O(N). Full-table exchanges survive in three
// places — join bootstrap (a probe from an unknown sender is answered
// with the whole table), the FullSyncEvery anti-entropy cadence, and
// Rejoin — which repair anything the bounded buffer evicted too early.

import (
	"math/bits"
	"sort"
)

// qUpdate is one queued rumor awaiting piggybacked dissemination.
type qUpdate struct {
	m         Member
	transmits int
}

// enqueueLocked queues m for dissemination, replacing any queued rumor
// about the same member and resetting its transmit count. Replacement
// is what lets a refutation (alive at a higher incarnation) or an
// escalation (suspect to dead) preempt a stale rumor mid-flight with a
// fresh retransmit budget: applyTable only records changes that
// supersede the table, so whatever is enqueued last is newest. Callers
// hold n.mu.
func (n *Node) enqueueLocked(m Member) {
	n.queue[m.ID] = &qUpdate{m: m}
	n.mQueueDepth.Set(int64(len(n.queue)))
}

// retransmitLimitLocked is the per-rumor transmit budget,
// λ·⌈log₂(N+1)⌉ with a small floor so tiny clusters still repeat each
// rumor a few times. Callers hold n.mu.
func (n *Node) retransmitLimitLocked() int {
	limit := n.cfg.RetransmitMult * bits.Len(uint(len(n.members)))
	if limit < 3 {
		limit = 3
	}
	return limit
}

// selectUpdatesLocked picks up to MaxPiggyback queued updates for one
// outgoing message, fewest-transmissions-first (ties broken by id so
// tests are deterministic), charges each pick one transmission, and
// evicts rumors that exhausted their budget. Callers hold n.mu.
func (n *Node) selectUpdatesLocked() []Member {
	if len(n.queue) == 0 {
		return nil
	}
	ids := make([]string, 0, len(n.queue))
	for id := range n.queue {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := n.queue[ids[i]], n.queue[ids[j]]
		if a.transmits != b.transmits {
			return a.transmits < b.transmits
		}
		return ids[i] < ids[j]
	})
	limit := n.retransmitLimitLocked()
	take := n.cfg.MaxPiggyback
	if len(ids) < take {
		take = len(ids)
	}
	out := make([]Member, 0, take)
	for _, id := range ids[:take] {
		u := n.queue[id]
		out = append(out, u.m)
		u.transmits++
		if u.transmits >= limit {
			delete(n.queue, id)
		}
	}
	n.mQueueDepth.Set(int64(len(n.queue)))
	return out
}

// gossipLoad is one outgoing message's piggyback payload: a bounded
// batch of queued updates, or (full) the whole table.
type gossipLoad struct {
	updates []Member
	full    bool
	table   []Member
}

// load builds the bounded payload for one outgoing message: the given
// must-carry entries (certificates a specific probe depends on — they
// do not charge the queue's budget) followed by the queue's selection.
// In FullTableGossip mode it degenerates to the full table.
func (n *Node) load(must ...Member) gossipLoad {
	if n.cfg.FullTableGossip {
		return n.fullLoad()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.loadLocked(must...)
}

func (n *Node) loadLocked(must ...Member) gossipLoad {
	if n.cfg.FullTableGossip {
		return gossipLoad{full: true, table: n.tableSnapshotLocked()}
	}
	sel := n.selectUpdatesLocked()
	if len(must) == 0 {
		return gossipLoad{updates: sel}
	}
	merged := make([]Member, 0, len(must)+len(sel))
	seen := make(map[string]bool, len(must))
	for _, m := range must {
		if !seen[m.ID] {
			merged = append(merged, m)
			seen[m.ID] = true
		}
	}
	for _, m := range sel {
		if !seen[m.ID] {
			merged = append(merged, m)
		}
	}
	return gossipLoad{updates: merged}
}

// fullLoad is a full-table anti-entropy payload.
func (n *Node) fullLoad() gossipLoad {
	return gossipLoad{full: true, table: n.tableSnapshot()}
}

// absorb merges a received payload: the full table when the exchange
// was Full, the bounded updates otherwise. Full-table merges do not
// re-enter the dissemination buffer — the sender's whole table is
// already wherever its gossip reaches, and re-queueing N entries on
// every bootstrap exchange floods the bounded buffer with redundant
// rumors that crowd out real news for hundreds of rounds. Bounded
// updates are rumors mid-flight and do re-queue, which is what carries
// them across the cluster in O(log N) rounds.
func (n *Node) absorb(updates, table []Member, full bool) {
	if full {
		n.applyFull(table)
		return
	}
	n.applyTable(updates)
}
