package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/owl"
	"mdagent/internal/rdf"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/store"
	"mdagent/internal/transport"
	"mdagent/internal/wsdl"
)

func newCenterPair(t *testing.T) (*Center, *Center) {
	t.Helper()
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	mk := func(space string) *Center {
		regDB, err := registry.New(store.OpenMemory())
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fab.Attach(CenterEndpointName(space), "")
		if err != nil {
			t.Fatal(err)
		}
		return NewCenter(space, regDB, ep, testConfig())
	}
	a, b := mk("alpha"), mk("beta")
	a.AddPeer("beta", CenterEndpointName("beta"))
	b.AddPeer("alpha", CenterEndpointName("alpha"))
	return a, b
}

func appDesc(name string) wsdl.Description {
	return wsdl.Description{
		Name: name,
		Services: []wsdl.Service{{Name: "svc", Ports: []wsdl.Port{{
			Name: "p", Operations: []wsdl.Operation{{Name: "op"}},
		}}}},
	}
}

func TestFederationReplicatesAllRecordKinds(t *testing.T) {
	a, b := newCenterPair(t)
	ctx := context.Background()

	rec := registry.AppRecord{
		Name: "player", Host: "hostA", Description: appDesc("player"),
		Components: []string{"ui", "logic"}, Running: true,
	}
	if err := a.RegisterApp(ctx, rec); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterResource(ctx, owl.Resource{
		ID: "song-1", Class: rdf.IMCL("MusicFile"), Host: "hostA", SizeBytes: 1024,
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterDevice(ctx, wsdl.DeviceProfile{Host: "hostA", MemoryMB: 256}); err != nil {
		t.Fatal(err)
	}
	// The record's space defaulted to the writing center's.
	if got, found, _ := a.LookupApp(ctx, "player", "hostA"); !found || got.Space != "alpha" {
		t.Fatalf("local record = %+v (found %v), want space alpha", got, found)
	}

	// b pulls everything in one anti-entropy round.
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	got, found, err := b.LookupApp(ctx, "player", "hostA")
	if err != nil || !found {
		t.Fatalf("replicated app lookup: found=%v err=%v", found, err)
	}
	if !got.Running || len(got.Components) != 2 || got.Space != "alpha" {
		t.Fatalf("replicated record mangled: %+v", got)
	}
	if _, found, _ := b.Device(ctx, "hostA"); !found {
		t.Fatal("device profile not replicated")
	}
	res, err := b.Registry().ResourcesOnHost("hostA")
	if err != nil || len(res) != 1 || res[0].ID != "song-1" {
		t.Fatalf("resource not replicated: %v err=%v", res, err)
	}
}

func TestFederationPushPropagatesWithoutSync(t *testing.T) {
	a, b := newCenterPair(t)
	ctx := context.Background()
	if err := a.RegisterApp(ctx, registry.AppRecord{
		Name: "editor", Host: "hostA", Description: appDesc("editor"),
	}); err != nil {
		t.Fatal(err)
	}
	// No SyncNow: the asynchronous push alone must land it at b.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, found, _ := b.LookupApp(ctx, "editor", "hostA"); found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("push never reached peer center")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFederationTombstoneRemovesEverywhere(t *testing.T) {
	a, b := newCenterPair(t)
	ctx := context.Background()
	if err := a.RegisterApp(ctx, registry.AppRecord{
		Name: "player", Host: "hostA", Description: appDesc("player"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := b.LookupApp(ctx, "player", "hostA"); !found {
		t.Fatal("precondition: record replicated")
	}
	if err := a.UnregisterApp(ctx, "player", "hostA"); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := b.LookupApp(ctx, "player", "hostA"); found {
		t.Fatal("tombstone did not remove replicated record")
	}
	// The tombstone must not resurrect via a's next sync either.
	if err := a.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := a.LookupApp(ctx, "player", "hostA"); found {
		t.Fatal("tombstoned record resurrected at origin")
	}
}

func TestFederationConcurrentWritesConverge(t *testing.T) {
	a, b := newCenterPair(t)
	ctx := context.Background()
	// Both centers write the same key before either hears of the other's
	// version: a genuine concurrent update.
	mk := func(space string) registry.AppRecord {
		return registry.AppRecord{
			Name: "player", Host: "hostA", Space: space,
			Description: appDesc("player"), Components: []string{"from-" + space},
		}
	}
	if err := a.RegisterApp(ctx, mk("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterApp(ctx, mk("beta")); err != nil {
		t.Fatal(err)
	}
	// Full reconciliation both directions, twice (merge then re-offer).
	for i := 0; i < 2; i++ {
		if err := a.SyncNow(ctx); err != nil {
			t.Fatal(err)
		}
		if err := b.SyncNow(ctx); err != nil {
			t.Fatal(err)
		}
	}
	ra, _, _ := a.LookupApp(ctx, "player", "hostA")
	rb, _, _ := b.LookupApp(ctx, "player", "hostA")
	if ra.Space != rb.Space || len(ra.Components) != 1 || ra.Components[0] != rb.Components[0] {
		t.Fatalf("centers diverged: a=%+v b=%+v", ra, rb)
	}
	// Deterministic winner: the higher origin space id.
	if ra.Space != "beta" {
		t.Fatalf("tiebreak picked %q, want beta", ra.Space)
	}
}

// TestFederationConcurrentLocalWritesAreOrdered hammers one center with
// racing writers for the same key: every write must tick on top of the
// previous (one totally ordered history), never produce two identical
// vectors that peers could adopt in different orders.
func TestFederationConcurrentLocalWritesAreOrdered(t *testing.T) {
	a, b := newCenterPair(t)
	ctx := context.Background()
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := registry.AppRecord{
					Name: "player", Host: "hostA",
					Description: appDesc("player"),
					Components:  []string{fmt.Sprintf("w%d-i%d", w, i)},
				}
				if err := a.RegisterApp(ctx, rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	key := registry.AppRecord{Name: "player", Host: "hostA"}.Key()
	a.mu.Lock()
	got := a.records[key].Version.Counter("alpha")
	a.mu.Unlock()
	if want := uint64(writers * perWriter); got != want {
		t.Fatalf("version counter = %d, want %d (lost writes mean racing identical vectors)", got, want)
	}
	// And the peer converges to exactly that version.
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	peer := b.records[key].Version.Counter("alpha")
	b.mu.Unlock()
	if peer != uint64(writers*perWriter) {
		t.Fatalf("peer version counter = %d, want %d", peer, writers*perWriter)
	}
}

// TestFederationVersionsSurviveRestart rebuilds a center over the same
// durable store: post-restart writes must continue the version history
// ({alpha:3}, not a fresh {alpha:1} that peers would reject as stale
// and silently revert via anti-entropy).
func TestFederationVersionsSurviveRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "center.log")
	key := registry.AppRecord{Name: "player", Host: "hostA"}.Key()
	ctx := context.Background()

	open := func() (*Center, func()) {
		db, err := store.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		reg, err := registry.New(db)
		if err != nil {
			t.Fatal(err)
		}
		fab := transport.NewLocalFabric(nil)
		ep, err := fab.Attach(CenterEndpointName("alpha"), "")
		if err != nil {
			t.Fatal(err)
		}
		return NewCenter("alpha", reg, ep, testConfig()), func() {
			fab.Close()
			db.Close()
		}
	}

	c1, close1 := open()
	for i := 0; i < 2; i++ {
		if err := c1.RegisterApp(ctx, registry.AppRecord{
			Name: "player", Host: "hostA", Description: appDesc("player"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c1.mu.Lock()
	before := c1.records[key].Version.Counter("alpha")
	c1.mu.Unlock()
	if before != 2 {
		t.Fatalf("pre-restart counter = %d, want 2", before)
	}
	close1()

	c2, close2 := open()
	defer close2()
	if err := c2.RegisterApp(ctx, registry.AppRecord{
		Name: "player", Host: "hostA", Description: appDesc("player"),
	}); err != nil {
		t.Fatal(err)
	}
	c2.mu.Lock()
	after := c2.records[key].Version.Counter("alpha")
	c2.mu.Unlock()
	if after != 3 {
		t.Fatalf("post-restart counter = %d, want 3 (history lost across restart)", after)
	}
}

func mustSnapshot(t *testing.T, appName, host string, val string) state.SnapshotPut {
	t.Helper()
	inst := app.New(appName, host, appDesc(appName))
	st := app.NewState("st")
	st.Set("v", val)
	if err := inst.AddComponent(st); err != nil {
		t.Fatal(err)
	}
	// A payload blob keeps deltas small relative to the base, so a
	// single-delta chain is not immediately compacted away.
	if err := inst.AddComponent(app.NewSizedBlob("payload", app.KindData, 8<<10)); err != nil {
		t.Fatal(err)
	}
	w, err := inst.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := state.EncodeSnapshot(app.TaggedSnapshot{Tag: "replica", At: time.Unix(1, 0), Wrap: w})
	if err != nil {
		t.Fatal(err)
	}
	return state.SnapshotPut{
		App: appName, Host: host, At: time.Unix(1, 0),
		Frame: frame, NewDigest: state.WrapDigest(w),
	}
}

// mustDelta builds a delta put mutating the "st" component's value on
// top of the given base state.
func mustDelta(t *testing.T, appName, host, baseVal, newVal string) state.SnapshotPut {
	t.Helper()
	inst := app.New(appName, host, appDesc(appName))
	st := app.NewState("st")
	st.Set("v", baseVal)
	if err := inst.AddComponent(st); err != nil {
		t.Fatal(err)
	}
	if err := inst.AddComponent(app.NewSizedBlob("payload", app.KindData, 8<<10)); err != nil {
		t.Fatal(err)
	}
	base, err := inst.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Set("v", newVal)
	next, err := inst.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := inst.WrapComponents([]string{"st"})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := state.EncodeDelta(state.WrapDelta{
		App: appName, FromHost: host, BaseDigest: state.WrapDigest(base),
		Components: changed.Components, Kinds: changed.Kinds,
		CoordState: changed.CoordState, Profile: changed.Profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	return state.SnapshotPut{
		App: appName, Host: host, At: time.Unix(2, 0), Delta: true, Frame: frame,
		BaseDigest: state.WrapDigest(base), NewDigest: state.WrapDigest(next),
	}
}

func snapValue(t *testing.T, sr state.SnapshotRecord) string {
	t.Helper()
	ts, err := sr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w := ts.Wrap
	inst := app.New(w.App, "check", appDesc(w.App))
	if err := inst.Unwrap(w); err != nil {
		t.Fatal(err)
	}
	st, ok := inst.Component("st")
	if !ok {
		t.Fatal("snapshot lost its state component")
	}
	v, _ := st.(*app.StateComponent).Get("v")
	return v
}

func TestFederationReplicatesSnapshots(t *testing.T) {
	a, b := newCenterPair(t)
	ctx := context.Background()

	stamped, err := a.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1"))
	if err != nil {
		t.Fatal(err)
	}
	if stamped.Seq != 1 {
		t.Fatalf("first snapshot seq = %d, want 1", stamped.Seq)
	}
	if rec, _ := a.LatestSnapshot("player"); rec.Space != "alpha" {
		t.Fatalf("stored space = %q, want alpha", rec.Space)
	}
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	got, ok := b.LatestSnapshot("player")
	if !ok {
		t.Fatal("snapshot did not replicate to beta")
	}
	if v := snapValue(t, got); v != "pos-1" {
		t.Fatalf("replicated snapshot value = %q, want pos-1", v)
	}

	// A newer capture supersedes, and its center-assigned sequence grows.
	stamped2, err := a.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-2"))
	if err != nil {
		t.Fatal(err)
	}
	if stamped2.Seq != 2 {
		t.Fatalf("second snapshot seq = %d, want 2", stamped2.Seq)
	}
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.LatestSnapshot("player"); snapValue(t, got) != "pos-2" {
		t.Fatalf("beta kept the stale snapshot")
	}
}

func TestFederationSnapshotTombstone(t *testing.T) {
	a, b := newCenterPair(t)
	ctx := context.Background()
	if _, err := a.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1")); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.LatestSnapshot("player"); !ok {
		t.Fatal("snapshot did not replicate before the tombstone")
	}
	// Graceful stop: the tombstone replicates and hides the snapshot
	// everywhere.
	if err := a.DropSnapshot(ctx, "player", "hostA"); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.LatestSnapshot("player"); ok {
		t.Fatal("alpha still serves a tombstoned snapshot")
	}
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.LatestSnapshot("player"); ok {
		t.Fatal("beta still serves a tombstoned snapshot")
	}
}

func TestFederationConcurrentSnapshotsPreferLongerHistory(t *testing.T) {
	a, b := newCenterPair(t)
	ctx := context.Background()
	// Both centers accept snapshots for the same app without having seen
	// each other's writes: beta has captured twice (longer history),
	// alpha once. After convergence both must agree on beta's latest,
	// regardless of the origin-space tiebreak that would pick beta anyway
	// — so run it mirrored too.
	if _, err := a.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "alpha-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PutSnapshot(ctx, mustSnapshot(t, "player", "hostB", "beta-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PutSnapshot(ctx, mustSnapshot(t, "player", "hostB", "beta-2")); err != nil {
		t.Fatal(err)
	}
	if err := a.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	av, _ := a.LatestSnapshot("player")
	bv, _ := b.LatestSnapshot("player")
	if snapValue(t, av) != "beta-2" || snapValue(t, bv) != "beta-2" {
		t.Fatalf("centers disagree or picked the shorter history: alpha=%q beta=%q",
			snapValue(t, av), snapValue(t, bv))
	}

	// Mirrored: now alpha develops the longer history concurrently.
	a2, b2 := newCenterPair(t)
	if _, err := b2.PutSnapshot(ctx, mustSnapshot(t, "player", "hostB", "beta-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "alpha-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "alpha-2")); err != nil {
		t.Fatal(err)
	}
	if err := a2.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b2.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	av2, _ := a2.LatestSnapshot("player")
	bv2, _ := b2.LatestSnapshot("player")
	if snapValue(t, av2) != "alpha-2" || snapValue(t, bv2) != "alpha-2" {
		t.Fatalf("longer alpha history lost: alpha=%q beta=%q",
			snapValue(t, av2), snapValue(t, bv2))
	}
}

// TestFederationDeltaChainCompactionAndPush drives a real replicator
// against one center and checks the whole delta leg: chain growth on the
// writer, delta-only pushes converging the peer (no anti-entropy pulls
// are ever run here), and compaction folding a long chain into a fresh
// base.
func TestFederationDeltaChainCompactionAndPush(t *testing.T) {
	a, b := newCenterPair(t)
	inst := app.New("player", "hostA", appDesc("player"))
	st := app.NewState("st")
	st.Set("v", "0")
	if err := inst.AddComponent(st); err != nil {
		t.Fatal(err)
	}
	if err := inst.AddComponent(app.NewSizedBlob("blob", app.KindData, 64<<10)); err != nil {
		t.Fatal(err)
	}
	// RebaseEvery far above the center's MaxDeltaChain so the center's
	// compaction — not the replicator's re-baseline — is what bounds the
	// chain.
	rep := state.NewReplicator("hostA", "alpha",
		func() []*app.Application { return []*app.Application{inst} },
		a, nil, time.Hour, state.Tuning{BudgetBytesPerSec: -1, RebaseEvery: 100, RebaseFraction: 100})
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		st.Set("v", strconv.Itoa(i))
		if err := rep.SyncNow(ctx); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok := a.LatestSnapshot("player")
	if !ok || rec.Seq != 4 || rec.BaseSeq != 1 || len(rec.Deltas) != 3 {
		t.Fatalf("writer record = seq %d base %d chain %d, want 4/1/3", rec.Seq, rec.BaseSeq, len(rec.Deltas))
	}
	if v := snapValue(t, rec); v != "3" {
		t.Fatalf("writer chain value = %q, want 3", v)
	}

	// The peer converges on pushes alone: the base rode a full record
	// push, each delta a snapDeltaMsg.
	waitPeer := func(wantSeq uint64, wantVal string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if got, ok := b.LatestSnapshot("player"); ok && got.Seq == wantSeq {
				if v := snapValue(t, got); v != wantVal {
					t.Fatalf("peer value at seq %d = %q, want %q", wantSeq, v, wantVal)
				}
				return
			}
			if time.Now().After(deadline) {
				got, _ := b.LatestSnapshot("player")
				t.Fatalf("peer never reached seq %d (at %d)", wantSeq, got.Seq)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitPeer(4, "3")
	if got, _ := b.LatestSnapshot("player"); len(got.Deltas) != 3 {
		t.Fatalf("peer chain = %d deltas, want 3 (delta pushes applied)", len(got.Deltas))
	}

	// Push the chain past MaxDeltaChain (testConfig defaults to 8): the
	// writing center must compact into a fresh base.
	for i := 4; i <= 14; i++ {
		st.Set("v", strconv.Itoa(i))
		if err := rep.SyncNow(ctx); err != nil {
			t.Fatal(err)
		}
	}
	rec2, _ := a.LatestSnapshot("player")
	if len(rec2.Deltas) > 8 {
		t.Fatalf("chain grew to %d deltas — compaction never fired", len(rec2.Deltas))
	}
	if rec2.BaseSeq == 1 {
		t.Fatal("base sequence still 1 — chain was never folded into a fresh base")
	}
	if v := snapValue(t, rec2); v != "14" {
		t.Fatalf("post-compaction value = %q, want 14", v)
	}
	waitPeer(rec2.Seq, "14")
}

// TestSnapshotWireProtocol exercises the Serve-bound snapshot handlers
// through a SnapshotClient: full put, chained delta put, in-band
// need-full refusal, remote fetch, and tombstone.
func TestSnapshotWireProtocol(t *testing.T) {
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	regDB, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := fab.Attach(CenterEndpointName("alpha"), "")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCenter("alpha", regDB, ep, testConfig())
	c.Serve(ep)
	cliEp, err := fab.Attach("client@test", "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewSnapshotClient(cliEp, CenterEndpointName("alpha"))
	ctx := context.Background()

	stamp, err := cli.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1"))
	if err != nil || stamp.Seq != 1 {
		t.Fatalf("remote full put: stamp=%+v err=%v", stamp, err)
	}
	stamp2, err := cli.PutSnapshot(ctx, mustDelta(t, "player", "hostA", "pos-1", "pos-2"))
	if err != nil || stamp2.Seq != 2 || stamp2.Chain != 1 {
		t.Fatalf("remote delta put: stamp=%+v err=%v", stamp2, err)
	}
	rec, found, err := cli.LatestSnapshot(ctx, "player")
	if err != nil || !found {
		t.Fatalf("remote get: found=%v err=%v", found, err)
	}
	if err := rec.Verify(); err != nil {
		t.Fatal(err)
	}
	if v := snapValue(t, rec); v != "pos-2" {
		t.Fatalf("remote record value = %q, want pos-2", v)
	}

	// A delta against a base the center does not hold comes back as the
	// typed ErrNeedFull, not a transport error.
	if _, err := cli.PutSnapshot(ctx, mustDelta(t, "player", "hostA", "bogus-base", "pos-3")); !errors.Is(err, state.ErrNeedFull) {
		t.Fatalf("stale-base delta: err = %v, want ErrNeedFull", err)
	}

	if err := cli.DropSnapshot(ctx, "player", "hostA"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := cli.LatestSnapshot(ctx, "player"); found {
		t.Fatal("tombstoned snapshot still served over the wire")
	}
}

// TestSnapshotDeltaAwareFetch: a restore fetch from a client that
// already holds an older record of the app moves only the missing delta
// tail; a base move (fresh full frame) or a cache that does not line up
// degrades to a full fetch, never a corrupt graft.
func TestSnapshotDeltaAwareFetch(t *testing.T) {
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	regDB, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := fab.Attach(CenterEndpointName("alpha"), "")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCenter("alpha", regDB, ep, testConfig())
	c.Serve(ep)
	cliEp, err := fab.Attach("client@test", "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewSnapshotClient(cliEp, CenterEndpointName("alpha"))
	ctx := context.Background()

	mustPut := func(p state.SnapshotPut) {
		t.Helper()
		if _, err := cli.PutSnapshot(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	mustGet := func(wantVal string) state.SnapshotRecord {
		t.Helper()
		rec, found, err := cli.LatestSnapshot(ctx, "player")
		if err != nil || !found {
			t.Fatalf("fetch: found=%v err=%v", found, err)
		}
		if v := snapValue(t, rec); v != wantVal {
			t.Fatalf("restored value = %q, want %q", v, wantVal)
		}
		return rec
	}

	// Cold fetch: no cache, the full record crosses the wire.
	mustPut(mustSnapshot(t, "player", "hostA", "pos-1"))
	mustPut(mustDelta(t, "player", "hostA", "pos-1", "pos-2"))
	mustGet("pos-2")
	if s := cli.FetchStats(); s.Full != 1 || s.DeltaOnly != 0 {
		t.Fatalf("cold fetch stats = %+v, want one full", s)
	}

	// The center advances by one delta; the next fetch grafts just the
	// tail onto the cached record.
	mustPut(mustDelta(t, "player", "hostA", "pos-2", "pos-3"))
	rec := mustGet("pos-3")
	if s := cli.FetchStats(); s.DeltaOnly != 1 || s.Full != 1 {
		t.Fatalf("tail fetch stats = %+v, want one delta-only", s)
	}
	if len(rec.Deltas) != 2 || rec.Seq != 3 || rec.BaseSeq != 1 {
		t.Fatalf("grafted record shape: seq=%d base=%d chain=%d", rec.Seq, rec.BaseSeq, len(rec.Deltas))
	}

	// Client already current: still tail-only, with an empty tail.
	rec = mustGet("pos-3")
	if s := cli.FetchStats(); s.DeltaOnly != 2 {
		t.Fatalf("up-to-date fetch stats = %+v, want a second delta-only", s)
	}
	if len(rec.Deltas) != 2 {
		t.Fatalf("up-to-date fetch changed the chain: %d deltas", len(rec.Deltas))
	}

	// A cache the center's digest check cannot see through (right head
	// digest, wrong chain shape) must fail the graft and fall back to one
	// full refetch instead of returning a torn record.
	cli.mu.Lock()
	bad := cli.cache["player"]
	bad.Deltas = bad.Deltas[:1] // shape lie: Seq still claims two deltas
	cli.cache["player"] = bad
	cli.mu.Unlock()
	mustGet("pos-3")
	if s := cli.FetchStats(); s.Refetches != 1 || s.Full != 2 {
		t.Fatalf("poisoned-cache stats = %+v, want one refetch + second full", s)
	}

	// A fresh full frame moves the base sequence: the cached prefix no
	// longer applies and the center answers with the full record.
	mustPut(mustSnapshot(t, "player", "hostA", "pos-9"))
	mustGet("pos-9")
	if s := cli.FetchStats(); s.Full != 3 || s.DeltaOnly != 2 || s.Refetches != 1 {
		t.Fatalf("base-move stats = %+v, want a third full fetch", s)
	}

	// Tombstone clears the cache, so a later re-put is fetched full.
	if err := cli.DropSnapshot(ctx, "player", "hostA"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := cli.LatestSnapshot(ctx, "player"); found {
		t.Fatal("tombstoned snapshot still served")
	}
	mustPut(mustSnapshot(t, "player", "hostA", "pos-10"))
	mustGet("pos-10")
	if s := cli.FetchStats(); s.Full != 4 {
		t.Fatalf("post-tombstone stats = %+v, want a fourth full fetch", s)
	}
}
