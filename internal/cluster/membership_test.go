package cluster

import (
	"fmt"
	"testing"
	"time"

	"mdagent/internal/netsim"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
)

// testConfig shrinks every interval so suspect->dead plays out in tens of
// milliseconds of wall time.
func testConfig() Config {
	return Config{
		ProbeInterval:    2 * time.Millisecond,
		ProbeTimeout:     20 * time.Millisecond,
		SuspicionTimeout: 30 * time.Millisecond,
		SyncInterval:     5 * time.Millisecond,
		IndirectProbes:   2,
		Seed:             7,
	}
}

// gossipRig is N membership nodes on one local fabric, each endpoint
// pinned to its own netsim host so fault injection severs its probes.
type gossipRig struct {
	net   *netsim.Network
	fab   *transport.LocalFabric
	nodes []*Node
}

func newGossipRig(t *testing.T, n int) *gossipRig {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.WithSeed(3))
	fab := transport.NewLocalFabric(net)
	t.Cleanup(func() { fab.Close() })
	r := &gossipRig{net: net, fab: fab}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("h%d", i+1)
		if _, err := net.AddHost(host, "lab", netsim.Pentium4_1700(), 0); err != nil {
			t.Fatal(err)
		}
		ep, err := fab.Attach(MemberEndpointName(host), host)
		if err != nil {
			t.Fatal(err)
		}
		node := NewNode(Member{ID: host, Space: "lab"}, ep, testConfig())
		for _, peer := range r.nodes {
			node.Join(peer.Self())
			peer.Join(node.Self())
		}
		r.nodes = append(r.nodes, node)
	}
	return r
}

// tickAll runs one synchronous protocol round on every node.
func (r *gossipRig) tickAll() {
	for _, n := range r.nodes {
		n.Tick()
	}
}

// waitState polls on manual ticks until observer sees subject in want.
func waitState(t *testing.T, r *gossipRig, observer *Node, subject string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, ok := observer.Member(subject); ok && m.State == want {
			return
		}
		if time.Now().After(deadline) {
			m, _ := observer.Member(subject)
			t.Fatalf("%s never saw %s as %v (last: %+v)", observer.Self().ID, subject, want, m)
		}
		r.tickAll()
		time.Sleep(time.Millisecond)
	}
}

func TestMembershipConvergesAlive(t *testing.T) {
	r := newGossipRig(t, 3)
	for _, n := range r.nodes {
		n.Start()
	}
	defer func() {
		for _, n := range r.nodes {
			n.Stop()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		converged := true
		for _, n := range r.nodes {
			if len(n.AliveHosts()) != 3 {
				converged = false
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range r.nodes {
				t.Logf("%s sees alive: %v", n.Self().ID, n.AliveHosts())
			}
			t.Fatal("membership never converged to 3 alive")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFailureDetectionSuspectThenDead(t *testing.T) {
	r := newGossipRig(t, 3)
	// Let everyone verify everyone once.
	for i := 0; i < 3; i++ {
		r.tickAll()
	}
	var transitions []State
	r.nodes[0].OnChange(func(_ *Node, m Member) {
		if m.ID == "h3" {
			transitions = append(transitions, m.State)
		}
	})
	if err := r.net.SetHostDown("h3", true); err != nil {
		t.Fatal(err)
	}
	waitState(t, r, r.nodes[0], "h3", StateDead)
	// The escalation must have passed through suspect before dead.
	if len(transitions) < 2 || transitions[0] != StateSuspect || transitions[len(transitions)-1] != StateDead {
		t.Fatalf("h3 transitions on h1 = %v, want [suspect ... dead]", transitions)
	}
	// Gossip spreads the death certificate to the other survivor too.
	waitState(t, r, r.nodes[1], "h3", StateDead)
}

func TestDeadCertificateSticksWithoutRejoin(t *testing.T) {
	r := newGossipRig(t, 3)
	for i := 0; i < 3; i++ {
		r.tickAll()
	}
	if err := r.net.SetHostDown("h3", true); err != nil {
		t.Fatal(err)
	}
	waitState(t, r, r.nodes[0], "h3", StateDead)
	// Network repaired, but h3 keeps its old incarnation: the certificate
	// holds until h3 refutes it (next round of probes reaches h3, which
	// bumps its incarnation and gossips alive again).
	if err := r.net.SetHostDown("h3", false); err != nil {
		t.Fatal(err)
	}
	if m, _ := r.nodes[0].Member("h3"); m.State != StateDead {
		t.Fatalf("death certificate dropped without refutation: %+v", m)
	}
}

func TestSuspicionRefutedByIncarnation(t *testing.T) {
	r := newGossipRig(t, 2)
	for i := 0; i < 2; i++ {
		r.tickAll()
	}
	// Plant a false rumor at h1: h2 is suspect at its current incarnation.
	h2 := r.nodes[1].Self()
	r.nodes[0].applyTable([]Member{{ID: h2.ID, Endpoint: h2.Endpoint, State: StateSuspect, Incarnation: h2.Incarnation}})
	if m, _ := r.nodes[0].Member("h2"); m.State != StateSuspect {
		t.Fatalf("rumor not planted: %+v", m)
	}
	// h1's next probe piggybacks the rumor; h2 refutes with a higher
	// incarnation, which the ack carries straight back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.nodes[0].Tick()
		if m, _ := r.nodes[0].Member("h2"); m.State == StateAlive && m.Incarnation > h2.Incarnation {
			return
		}
		if time.Now().After(deadline) {
			m, _ := r.nodes[0].Member("h2")
			t.Fatalf("suspicion never refuted: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIndirectProbeSurvivesAsymmetricPartition(t *testing.T) {
	r := newGossipRig(t, 3)
	for i := 0; i < 3; i++ {
		r.tickAll()
	}
	// h1 and h2 cannot talk directly, but h3 reaches both: SWIM's
	// ping-req through h3 must keep h2 alive in h1's view.
	r.net.Partition([]string{"h1"}, []string{"h2"})
	for i := 0; i < 30; i++ {
		r.tickAll()
		time.Sleep(time.Millisecond)
	}
	if m, _ := r.nodes[0].Member("h2"); m.State != StateAlive {
		t.Fatalf("h1 lost h2 despite relay path via h3: %+v", m)
	}
	if m, _ := r.nodes[1].Member("h1"); m.State != StateAlive {
		t.Fatalf("h2 lost h1 despite relay path via h3: %+v", m)
	}
}

func TestQuorumLostWhenIsolated(t *testing.T) {
	r := newGossipRig(t, 3)
	for i := 0; i < 3; i++ {
		r.tickAll()
	}
	if !r.nodes[0].HasQuorum() {
		t.Fatal("h1 should have quorum while everyone is alive")
	}
	// Isolate h1: from its own vantage point everyone else dies, which
	// must cost it quorum — the guard against split-brain re-homing.
	if err := r.net.SetHostDown("h1", true); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.nodes[0].HasQuorum() {
		if time.Now().After(deadline) {
			t.Fatalf("isolated h1 kept quorum; sees alive %v", r.nodes[0].AliveHosts())
		}
		r.nodes[0].Tick()
		time.Sleep(time.Millisecond)
	}
	// The survivors keep quorum (they see 2 of 3 alive).
	waitSurvivors := time.Now().Add(5 * time.Second)
	for {
		if m, ok := r.nodes[1].Member("h1"); ok && m.State == StateDead {
			break
		}
		if time.Now().After(waitSurvivors) {
			t.Fatal("survivors never declared h1 dead")
		}
		r.nodes[1].Tick()
		r.nodes[2].Tick()
		time.Sleep(time.Millisecond)
	}
	if !r.nodes[1].HasQuorum() || !r.nodes[2].HasQuorum() {
		t.Fatal("survivors lost quorum despite majority alive")
	}
}

// TestRejoinClearsDeathCertificates drives the partition-healing path: a
// convicted host comes back, calls Rejoin, and both sides' death
// certificates clear without manual intervention.
func TestRejoinClearsDeathCertificates(t *testing.T) {
	r := newGossipRig(t, 3)
	for i := 0; i < 3; i++ {
		r.tickAll()
	}
	if err := r.net.SetHostDown("h3", true); err != nil {
		t.Fatal(err)
	}
	waitState(t, r, r.nodes[0], "h3", StateDead)
	waitState(t, r, r.nodes[1], "h3", StateDead)
	// During its isolation, h3 convicted the others too.
	waitState(t, r, r.nodes[2], "h1", StateDead)
	waitState(t, r, r.nodes[2], "h2", StateDead)

	if err := r.net.SetHostDown("h3", false); err != nil {
		t.Fatal(err)
	}
	r.nodes[2].Rejoin()

	// Rejoin pings every member directly: the survivors learn h3 is back
	// (alive at a bumped incarnation beats the certificate)...
	for _, observer := range []int{0, 1} {
		if m, _ := r.nodes[observer].Member("h3"); m.State != StateAlive {
			t.Fatalf("h%d still holds h3's death certificate after Rejoin: %+v", observer+1, m)
		}
	}
	// ...and the acks carried the survivors' refutations back to h3.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(r.nodes[2].AliveHosts()) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("h3 never cleared its certificates; sees alive %v", r.nodes[2].AliveHosts())
		}
		r.tickAll()
		time.Sleep(time.Millisecond)
	}
}

// TestDeadProbeHealsPartitionWithoutRejoin: after a symmetric partition
// heals, the periodic dead-member probe (Config.DeadProbeEvery) alone
// must rediscover the other side — no explicit Rejoin call — because the
// regular rotation never probes members marked dead.
func TestDeadProbeHealsPartitionWithoutRejoin(t *testing.T) {
	r := newGossipRig(t, 4)
	for i := 0; i < 4; i++ {
		r.tickAll()
	}
	r.net.Partition([]string{"h1", "h2"}, []string{"h3", "h4"})
	waitState(t, r, r.nodes[0], "h3", StateDead)
	waitState(t, r, r.nodes[0], "h4", StateDead)
	waitState(t, r, r.nodes[2], "h1", StateDead)
	waitState(t, r, r.nodes[2], "h2", StateDead)

	r.net.HealPartition()
	deadline := time.Now().Add(10 * time.Second)
	for {
		healed := true
		for _, n := range r.nodes {
			if len(n.AliveHosts()) != 4 {
				healed = false
				break
			}
		}
		if healed {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range r.nodes {
				t.Logf("%s sees alive: %v", n.Self().ID, n.AliveHosts())
			}
			t.Fatal("membership never healed after the partition")
		}
		r.tickAll()
		time.Sleep(time.Millisecond)
	}
}
