package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mdagent/internal/obs"
	"mdagent/internal/transport"
)

// State is a member's health as seen by one node.
type State int

// Member states, in escalation order.
const (
	StateAlive State = iota + 1
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Member is one host's entry in the membership table.
type Member struct {
	ID          string // host id
	Endpoint    string // transport endpoint the member's node listens on
	Space       string // smart space the host belongs to
	State       State
	Incarnation uint64 // refutation counter (only the member itself bumps it)
}

// Config parameterizes a cluster deployment: SWIM probe cadence, the
// suspect->dead escalation window, and the federation anti-entropy period.
// The zero value takes the defaults below; tests shrink every interval.
type Config struct {
	// ProbeInterval is the period between SWIM probes (default 100 ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one direct or indirect probe (default 250 ms).
	ProbeTimeout time.Duration
	// SuspicionTimeout is how long a suspect may linger before it is
	// declared dead (default 1 s).
	SuspicionTimeout time.Duration
	// SyncInterval is the federation anti-entropy period (default 250 ms).
	SyncInterval time.Duration
	// IndirectProbes is how many relays an indirect probe uses (default 2).
	IndirectProbes int
	// DeadProbeEvery makes every Nth protocol tick additionally probe one
	// dead member, so a healed partition or restarted peer is rediscovered
	// and its death certificate refuted without manual intervention
	// (default 8; negative disables).
	DeadProbeEvery int
	// Seed feeds probe-target shuffling (default 1).
	Seed int64

	// ReplicateState opts hosts into the state pipeline: each host's
	// replicator streams its applications' snapshots to its space's
	// registry center (and on to every peer space via federation), and
	// failover restores the freshest snapshot instead of a skeleton.
	ReplicateState bool
	// ReplicateInterval is the snapshot capture period (default 250 ms;
	// meaningful only with ReplicateState).
	ReplicateInterval time.Duration
	// MaxDeltaChain bounds a replicated snapshot record's delta chain:
	// the replicator re-baselines with a full frame after this many
	// consecutive deltas, and a center compacts a stored chain this long
	// into a fresh base (default 8).
	MaxDeltaChain int
	// ReplicateBudget is the size-aware capture cadence in acked bytes
	// per second: after publishing B bytes for an app, its next periodic
	// capture is deferred B/budget seconds, so big apps capture less
	// often (default 64 MB/s; negative disables pacing).
	ReplicateBudget int64
	// FullSnapshotFrames disables the delta pipeline — every capture
	// publishes a full frame, the pre-delta behaviour. The benchmark
	// baseline, not something a deployment should want.
	FullSnapshotFrames bool

	// WriteConcern is the federation write durability level: WriteAsync
	// (default) returns as soon as a write lands locally; WriteOne and
	// WriteQuorum block until enough peer centers acknowledged the
	// pushed record or snapshot delta. On shortfall the write still
	// lands locally (anti-entropy retries delivery) and the caller gets
	// ErrNotDurable. Snapshot puts may override it per put.
	WriteConcern WriteConcern
	// AckTimeout bounds the synchronous wait for peer acks on a durable
	// write (default 2 x ProbeTimeout).
	AckTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = time.Second
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 250 * time.Millisecond
	}
	if c.IndirectProbes <= 0 {
		c.IndirectProbes = 2
	}
	if c.DeadProbeEvery == 0 {
		c.DeadProbeEvery = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReplicateInterval <= 0 {
		c.ReplicateInterval = 250 * time.Millisecond
	}
	if c.MaxDeltaChain <= 0 {
		c.MaxDeltaChain = 8
	}
	if c.ReplicateBudget == 0 {
		c.ReplicateBudget = 64 << 20
	}
	if c.WriteConcern == "" {
		c.WriteConcern = WriteAsync
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * c.ProbeTimeout
	}
	return c
}

// Node runs SWIM-style membership for one host: it probes a random peer
// every ProbeInterval, escalates unresponsive peers alive -> suspect ->
// dead, piggybacks its table on every probe and ack, and refutes rumors
// about itself by bumping its incarnation. It runs over any transport
// endpoint — the in-process fabric (where netsim fault injection severs
// probes) or a TCP node.
type Node struct {
	cfg Config
	ep  *transport.Endpoint

	mu        sync.Mutex
	self      Member
	members   map[string]*memberEntry
	rotation  []string // shuffled probe order
	rotIdx    int
	ticks     uint64 // protocol rounds run (dead-probe cadence)
	rng       *rand.Rand
	listeners []func(*Node, Member)
	leaving   bool // set by Leave: stop refuting rumors of our death

	mRounds *obs.Counter // gossip protocol rounds run
	mBytes  *obs.Counter // gossip payload bytes sent (probes + relays)

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type memberEntry struct {
	Member
	suspectSince time.Time
}

// NewNode creates a membership node for host self, serving probes on ep.
// Call Start to begin probing; the node answers peers' probes as soon as
// it is created.
func NewNode(self Member, ep *transport.Endpoint, cfg Config) *Node {
	cfg = cfg.withDefaults()
	self.State = StateAlive
	if self.Incarnation == 0 {
		self.Incarnation = 1
	}
	if self.Endpoint == "" {
		self.Endpoint = ep.Name()
	}
	n := &Node{
		cfg:     cfg,
		ep:      ep,
		self:    self,
		members: map[string]*memberEntry{self.ID: {Member: self}},
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(len(self.ID)))),
		stop:    make(chan struct{}),
		mRounds: obs.Default.Counter("mdagent_gossip_rounds_total", "host", self.ID),
		mBytes:  obs.Default.Counter("mdagent_gossip_bytes_total", "host", self.ID),
	}
	ep.Handle(MsgPing, n.handlePing)
	ep.Handle(MsgPingReq, n.handlePingReq)
	return n
}

// Self returns this node's own membership entry.
func (n *Node) Self() Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.self
}

// Join seeds the table with a known peer (assumed alive until probed).
func (n *Node) Join(peer Member) {
	peer.State = StateAlive
	n.applyTable([]Member{peer})
}

// OnChange registers a callback fired (off the node's lock, on the
// probing goroutine) whenever a member transitions state or is first
// learned. The reporting node rides along so listeners can consult its
// view (e.g. HasQuorum) before acting.
func (n *Node) OnChange(f func(*Node, Member)) {
	n.mu.Lock()
	n.listeners = append(n.listeners, f)
	n.mu.Unlock()
}

// Members returns the full table, sorted by id.
func (n *Node) Members() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, e := range n.members {
		out = append(out, e.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Member returns one entry by host id.
func (n *Node) Member(id string) (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.members[id]
	if !ok {
		return Member{}, false
	}
	return e.Member, true
}

// AliveHosts lists the ids of members this node currently believes alive
// (including itself), sorted.
func (n *Node) AliveHosts() []string {
	var out []string
	for _, m := range n.Members() {
		if m.State == StateAlive {
			out = append(out, m.ID)
		}
	}
	return out
}

// HasQuorum reports whether this node sees a strict majority of the known
// membership alive. An isolated node loses quorum and must not act on its
// (necessarily wrong) belief that everyone else died — the guard that
// keeps a crashed-but-running host from re-homing the world onto itself.
func (n *Node) HasQuorum() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	alive, total := 0, 0
	for _, e := range n.members {
		total++
		if e.State == StateAlive {
			alive++
		}
	}
	return alive*2 > total
}

// Start launches the probe loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				n.Tick()
			}
		}
	}()
}

// Stop halts probing. The node still answers peers until its endpoint
// closes.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Tick runs one protocol round synchronously: sweep overdue suspects,
// every DeadProbeEvery rounds ping one dead member (partition-heal
// rediscovery), then probe the next live member in the shuffled rotation.
// Tests drive it directly for determinism; Start calls it on a ticker.
func (n *Node) Tick() {
	n.mRounds.Inc()
	n.sweep(time.Now())
	n.mu.Lock()
	n.ticks++
	probeDead := n.cfg.DeadProbeEvery > 0 && n.ticks%uint64(n.cfg.DeadProbeEvery) == 0
	n.mu.Unlock()
	if probeDead {
		if dead, ok := n.deadTarget(); ok {
			// Best-effort: the ping carries our table (including the
			// peer's death certificate); a peer that is actually back
			// refutes it by bumping its incarnation, and the refutation in
			// its ack clears the certificate here, whence gossip spreads
			// it. Without this, two sides of a healed partition would
			// never probe each other again. Off the protocol round: in the
			// common case the member really is dead and the ping eats the
			// full ProbeTimeout, which must not stall live probing.
			// Untracked on purpose, like the federation's pushAsync: a
			// probe racing shutdown just reports a closed endpoint.
			table := n.tableSnapshot()
			go n.ping(dead.Endpoint, table)
		}
	}
	target, ok := n.nextTarget()
	if !ok {
		return
	}
	n.probe(target)
}

// deadTarget picks one dead member at random.
func (n *Node) deadTarget() (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var pool []Member
	for id, e := range n.members {
		if id != n.self.ID && e.State == StateDead {
			pool = append(pool, e.Member)
		}
	}
	if len(pool) == 0 {
		return Member{}, false
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID < pool[j].ID })
	return pool[n.rng.Intn(len(pool))], true
}

// ConfirmDead re-probes a member this node believes dead, directly and
// then through indirect relays (a severed reporter->member link must not
// "confirm" a live member), as a last check before acting on the
// conviction (e.g. re-homing its applications). An answered probe
// applies the ack's table and then re-reads the entry: a falsely
// convicted live member refutes in the ack (alive at a higher
// incarnation), clearing the conviction — not confirmed. A gracefully
// leaving member also answers for a moment, but its ack carries its own
// death certificate, so the entry stays dead — confirmed, and failover
// may proceed without waiting for its process to exit. A genuinely
// crashed host fails fast (connection refused / netsim host-down), so
// the common failover path pays almost nothing.
func (n *Node) ConfirmDead(id string) bool {
	n.mu.Lock()
	e, ok := n.members[id]
	if !ok {
		n.mu.Unlock()
		return false // unknown member: nothing to act on
	}
	if e.State != StateDead {
		n.mu.Unlock()
		return false // already cleared
	}
	target := e.Member
	n.mu.Unlock()
	table := n.tableSnapshot()
	if n.ping(target.Endpoint, table) {
		return n.stillDead(id)
	}
	for _, relay := range n.relays(id) {
		if n.pingVia(relay, target, table) {
			return n.stillDead(id)
		}
	}
	return true
}

// stillDead reports whether id remains convicted after an answered
// confirm-probe applied the ack's table.
func (n *Node) stillDead(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.members[id]
	return ok && e.State == StateDead
}

// Rejoin announces this node after a restart or a healed partition: it
// bumps our incarnation past rumors in flight and synchronously pings
// every known member — dead ones included — so death certificates on both
// sides are refuted immediately instead of waiting out the dead-probe
// cadence. A second round runs when the first taught us of a certificate
// our bumped incarnation did not yet clear (a restarted node rejoining a
// cluster that convicted its previous life at a higher incarnation).
func (n *Node) Rejoin() {
	n.mu.Lock()
	n.self.Incarnation++
	n.members[n.self.ID].Member = n.self
	n.mu.Unlock()
	for round := 0; round < 2; round++ {
		before := n.Self().Incarnation
		for _, m := range n.Members() {
			if m.ID == n.Self().ID {
				continue
			}
			n.ping(m.Endpoint, n.tableSnapshot())
		}
		if n.Self().Incarnation == before {
			return // no peer held a certificate we had not already beaten
		}
	}
}

// Leave announces an intentional departure: it publishes our own death
// certificate at the current incarnation and synchronously pings every
// alive peer with it, so the cluster convicts this host immediately
// instead of burning a probe round plus the full suspicion window. The
// certificate uses the normal dead-overrides-alive precedence (no new
// message type), and the leaving flag stops applyTable from refuting the
// echo of our own certificate in the acks. Call before Stop on a clean
// shutdown; a crashed host simply never calls it.
func (n *Node) Leave() {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return
	}
	n.leaving = true
	n.self.State = StateDead
	n.members[n.self.ID].Member = n.self
	var peers []Member
	for id, e := range n.members {
		if id == n.self.ID || e.State != StateAlive {
			continue
		}
		peers = append(peers, e.Member)
	}
	n.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	table := n.tableSnapshot()
	for _, p := range peers {
		n.ping(p.Endpoint, table)
	}
}

// nextTarget picks the next probeable member in round-robin order over a
// shuffled rotation (SWIM's bounded-staleness target selection).
func (n *Node) nextTarget() (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rotIdx >= len(n.rotation) {
		n.rotation = n.rotation[:0]
		for id, e := range n.members {
			if id == n.self.ID || e.State == StateDead {
				continue
			}
			n.rotation = append(n.rotation, id)
		}
		sort.Strings(n.rotation)
		n.rng.Shuffle(len(n.rotation), func(i, j int) {
			n.rotation[i], n.rotation[j] = n.rotation[j], n.rotation[i]
		})
		n.rotIdx = 0
	}
	for n.rotIdx < len(n.rotation) {
		id := n.rotation[n.rotIdx]
		n.rotIdx++
		if e, ok := n.members[id]; ok && e.State != StateDead {
			return e.Member, true
		}
	}
	return Member{}, false
}

// probe pings target directly, falling back to indirect probes through
// IndirectProbes relays; on total failure the target becomes a suspect.
func (n *Node) probe(target Member) {
	table := n.tableSnapshot()
	if n.ping(target.Endpoint, table) {
		return
	}
	for _, relay := range n.relays(target.ID) {
		if n.pingVia(relay, target, table) {
			return
		}
	}
	n.markSuspect(target.ID)
}

// ping sends one direct probe and merges the ack table.
func (n *Node) ping(endpoint string, table []Member) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
	defer cancel()
	payload := transport.MustEncode(pingMsg{From: n.self.ID, Table: table})
	n.mBytes.Add(int64(len(payload)))
	var ack ackMsg
	err := n.ep.RequestDecode(ctx, endpoint, MsgPing, payload, &ack)
	if err != nil {
		return false
	}
	n.applyTable(ack.Table)
	return true
}

// pingVia asks relay to probe target on our behalf.
func (n *Node) pingVia(relay, target Member, table []Member) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
	defer cancel()
	payload := transport.MustEncode(pingReqMsg{From: n.self.ID, Target: target, Table: table})
	n.mBytes.Add(int64(len(payload)))
	var ack ackMsg
	err := n.ep.RequestDecode(ctx, relay.Endpoint, MsgPingReq, payload, &ack)
	if err != nil || !ack.OK {
		return false
	}
	n.applyTable(ack.Table)
	return true
}

// relays picks up to IndirectProbes alive members other than self and the
// target.
func (n *Node) relays(targetID string) []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	var pool []Member
	for id, e := range n.members {
		if id == n.self.ID || id == targetID || e.State != StateAlive {
			continue
		}
		pool = append(pool, e.Member)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID < pool[j].ID })
	n.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > n.cfg.IndirectProbes {
		pool = pool[:n.cfg.IndirectProbes]
	}
	return pool
}

// markSuspect escalates a member to suspect (a no-op if it is already
// suspect or dead).
func (n *Node) markSuspect(id string) {
	n.mu.Lock()
	e, ok := n.members[id]
	if !ok || e.State != StateAlive {
		n.mu.Unlock()
		return
	}
	e.State = StateSuspect
	e.suspectSince = time.Now()
	changed := e.Member
	n.mu.Unlock()
	n.notify(changed)
}

// sweep declares overdue suspects dead.
func (n *Node) sweep(now time.Time) {
	n.mu.Lock()
	var dead []Member
	for _, e := range n.members {
		if e.State == StateSuspect && now.Sub(e.suspectSince) >= n.cfg.SuspicionTimeout {
			e.State = StateDead
			dead = append(dead, e.Member)
		}
	}
	n.mu.Unlock()
	for _, m := range dead {
		n.notify(m)
	}
}

// tableSnapshot copies the membership table for piggybacking.
func (n *Node) tableSnapshot() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, e := range n.members {
		out = append(out, e.Member)
	}
	return out
}

// applyTable merges a received table under SWIM's precedence rules:
// higher incarnation wins; at equal incarnation dead > suspect > alive;
// dead additionally overrides any lower incarnation (a death certificate
// does not expire). Rumors about self that are not alive are refuted by
// bumping our incarnation past them.
func (n *Node) applyTable(table []Member) {
	n.mu.Lock()
	var changed []Member
	for _, m := range table {
		if m.ID == n.self.ID {
			// A leaving node published its own death certificate on
			// purpose; refuting the echo would resurrect it.
			if !n.leaving && m.State != StateAlive && m.Incarnation >= n.self.Incarnation {
				n.self.Incarnation = m.Incarnation + 1
				n.members[n.self.ID].Member = n.self
			}
			continue
		}
		e, known := n.members[m.ID]
		if !known {
			e = &memberEntry{Member: m}
			if m.State == StateSuspect {
				e.suspectSince = time.Now()
			}
			n.members[m.ID] = e
			changed = append(changed, e.Member)
			continue
		}
		if !supersedes(m, e.Member) {
			continue
		}
		prev := e.State
		e.Member = m
		if m.State == StateSuspect && prev != StateSuspect {
			e.suspectSince = time.Now()
		}
		if m.State != prev {
			changed = append(changed, e.Member)
		}
	}
	n.mu.Unlock()
	for _, m := range changed {
		n.notify(m)
	}
}

// supersedes reports whether update m should replace current.
func supersedes(m, current Member) bool {
	if current.State == StateDead {
		// Only a fresh incarnation (a restarted or refuted member) clears
		// a death certificate.
		return m.State == StateAlive && m.Incarnation > current.Incarnation
	}
	if m.State == StateDead {
		// A death certificate overrides suspicion unconditionally, and
		// overrides alive at the same or lower incarnation — but NOT a
		// refuted alive at a higher incarnation. Without the incarnation
		// check, stale certificates circulating after a healed partition
		// keep re-killing members that already refuted them, and the
		// membership ping-pongs dead<->alive forever.
		if current.State == StateAlive {
			return m.Incarnation >= current.Incarnation
		}
		return true
	}
	if m.Incarnation != current.Incarnation {
		return m.Incarnation > current.Incarnation
	}
	return statePrecedence(m.State) > statePrecedence(current.State)
}

func statePrecedence(s State) int {
	switch s {
	case StateAlive:
		return 0
	case StateSuspect:
		return 1
	case StateDead:
		return 2
	}
	return -1
}

func (n *Node) notify(m Member) {
	n.mu.Lock()
	ls := make([]func(*Node, Member), len(n.listeners))
	copy(ls, n.listeners)
	n.mu.Unlock()
	for _, f := range ls {
		f(n, m)
	}
}

// handlePing answers a direct probe: merge the sender's table, ack with
// ours.
func (n *Node) handlePing(msg transport.Message) ([]byte, error) {
	var p pingMsg
	if err := transport.Decode(msg.Payload, &p); err != nil {
		return nil, err
	}
	n.applyTable(p.Table)
	return transport.Encode(ackMsg{OK: true, Table: n.tableSnapshot()})
}

// handlePingReq probes the requested target on the asker's behalf.
func (n *Node) handlePingReq(msg transport.Message) ([]byte, error) {
	var p pingReqMsg
	if err := transport.Decode(msg.Payload, &p); err != nil {
		return nil, err
	}
	n.applyTable(p.Table)
	ok := n.ping(p.Target.Endpoint, n.tableSnapshot())
	return transport.Encode(ackMsg{OK: ok, Table: n.tableSnapshot()})
}
