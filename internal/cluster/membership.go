package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mdagent/internal/obs"
	"mdagent/internal/transport"
)

// State is a member's health as seen by one node.
type State int

// Member states, in escalation order.
const (
	StateAlive State = iota + 1
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Member is one host's entry in the membership table.
type Member struct {
	ID          string // host id
	Endpoint    string // transport endpoint the member's node listens on
	Space       string // smart space the host belongs to
	State       State
	Incarnation uint64 // refutation counter (only the member itself bumps it)
}

// Config parameterizes a cluster deployment: SWIM probe cadence, the
// suspect->dead escalation window, and the federation anti-entropy period.
// The zero value takes the defaults below; tests shrink every interval.
type Config struct {
	// ProbeInterval is the period between SWIM probes (default 100 ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one direct or indirect probe (default 250 ms).
	ProbeTimeout time.Duration
	// SuspicionTimeout is how long a suspect may linger before it is
	// declared dead (default 1 s).
	SuspicionTimeout time.Duration
	// SyncInterval is the federation anti-entropy period (default 250 ms).
	SyncInterval time.Duration
	// IndirectProbes is how many relays an indirect probe uses (default 2).
	IndirectProbes int
	// DeadProbeEvery makes every Nth protocol tick additionally probe one
	// dead member, so a healed partition or restarted peer is rediscovered
	// and its death certificate refuted without manual intervention
	// (default 8; negative disables).
	DeadProbeEvery int
	// Seed feeds probe-target shuffling (default 1).
	Seed int64
	// MaxPiggyback caps how many membership updates ride on one gossip
	// message (default 8). Bounded dissemination: payload size stays
	// O(1) as the cluster grows, where full-table piggybacking was O(N).
	MaxPiggyback int
	// RetransmitMult is λ in the SWIM retransmit budget: a queued update
	// rides along on λ·log₂N messages before the buffer evicts it
	// (default 4).
	RetransmitMult int
	// FullSyncEvery makes every Nth protocol tick a full-table
	// anti-entropy exchange with the probed member, repairing whatever
	// the bounded buffer evicted before it reached everyone (default 64;
	// negative disables).
	FullSyncEvery int
	// FullTableGossip restores the pre-bounded behaviour: the full
	// membership table on every probe and ack. The benchmark baseline,
	// not something a deployment should want.
	FullTableGossip bool

	// ReplicateState opts hosts into the state pipeline: each host's
	// replicator streams its applications' snapshots to its space's
	// registry center (and on to every peer space via federation), and
	// failover restores the freshest snapshot instead of a skeleton.
	ReplicateState bool
	// ReplicateInterval is the snapshot capture period (default 250 ms;
	// meaningful only with ReplicateState).
	ReplicateInterval time.Duration
	// MaxDeltaChain bounds a replicated snapshot record's delta chain:
	// the replicator re-baselines with a full frame after this many
	// consecutive deltas, and a center compacts a stored chain this long
	// into a fresh base (default 8).
	MaxDeltaChain int
	// ReplicateBudget is the size-aware capture cadence in acked bytes
	// per second: after publishing B bytes for an app, its next periodic
	// capture is deferred B/budget seconds, so big apps capture less
	// often (default 64 MB/s; negative disables pacing).
	ReplicateBudget int64
	// FullSnapshotFrames disables the delta pipeline — every capture
	// publishes a full frame, the pre-delta behaviour. The benchmark
	// baseline, not something a deployment should want.
	FullSnapshotFrames bool

	// WriteConcern is the federation write durability level: WriteAsync
	// (default) returns as soon as a write lands locally; WriteOne and
	// WriteQuorum block until enough peer centers acknowledged the
	// pushed record or snapshot delta. On shortfall the write still
	// lands locally (anti-entropy retries delivery) and the caller gets
	// ErrNotDurable. Snapshot puts may override it per put.
	WriteConcern WriteConcern
	// AckTimeout bounds the synchronous wait for peer acks on a durable
	// write (default 2 x ProbeTimeout).
	AckTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = time.Second
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 250 * time.Millisecond
	}
	if c.IndirectProbes <= 0 {
		c.IndirectProbes = 2
	}
	if c.DeadProbeEvery == 0 {
		c.DeadProbeEvery = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxPiggyback <= 0 {
		c.MaxPiggyback = 8
	}
	if c.RetransmitMult <= 0 {
		c.RetransmitMult = 4
	}
	if c.FullSyncEvery == 0 {
		c.FullSyncEvery = 64
	}
	if c.ReplicateInterval <= 0 {
		c.ReplicateInterval = 250 * time.Millisecond
	}
	if c.MaxDeltaChain <= 0 {
		c.MaxDeltaChain = 8
	}
	if c.ReplicateBudget == 0 {
		c.ReplicateBudget = 64 << 20
	}
	if c.WriteConcern == "" {
		c.WriteConcern = WriteAsync
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * c.ProbeTimeout
	}
	return c
}

// Node runs SWIM-style membership for one host: it probes the next peer
// in a shuffled round-robin rotation every ProbeInterval, escalates
// unresponsive peers alive -> suspect -> dead, piggybacks a bounded
// batch of queued membership updates on every probe and ack (see
// dissemination.go), and refutes rumors about itself by bumping its
// incarnation. It runs over any transport endpoint — the in-process
// fabric (where netsim fault injection severs probes) or a TCP node.
type Node struct {
	cfg Config
	ep  *transport.Endpoint

	mu        sync.Mutex
	self      Member
	members   map[string]*memberEntry
	queue     map[string]*qUpdate // bounded dissemination buffer
	rotation  []string            // shuffled probe order
	rotIdx    int
	ticks     uint64 // protocol rounds run (dead-probe + full-sync cadence)
	rng       *rand.Rand
	listeners []func(*Node, Member)
	leaving   bool // set by Leave: stop refuting rumors of our death

	mRounds     *obs.Counter // gossip protocol rounds run
	mBytes      *obs.Counter // gossip payload bytes sent (probes, relays, acks)
	mMsgs       *obs.Counter // gossip messages sent (probes, relays, acks)
	mUpdates    *obs.Counter // membership updates piggybacked on sent messages
	mFullSync   *obs.Counter // full-table exchanges (bootstrap, cadence, rejoin)
	mQueueDepth *obs.Gauge   // rumors currently buffered for dissemination

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type memberEntry struct {
	Member
	suspectSince time.Time
}

// NewNode creates a membership node for host self, serving probes on ep.
// Call Start to begin probing; the node answers peers' probes as soon as
// it is created.
func NewNode(self Member, ep *transport.Endpoint, cfg Config) *Node {
	cfg = cfg.withDefaults()
	self.State = StateAlive
	if self.Incarnation == 0 {
		self.Incarnation = 1
	}
	if self.Endpoint == "" {
		self.Endpoint = ep.Name()
	}
	n := &Node{
		cfg:         cfg,
		ep:          ep,
		self:        self,
		members:     map[string]*memberEntry{self.ID: {Member: self}},
		queue:       make(map[string]*qUpdate),
		rng:         rand.New(rand.NewSource(cfg.Seed + int64(len(self.ID)))),
		stop:        make(chan struct{}),
		mRounds:     obs.Default.Counter("mdagent_gossip_rounds_total", "host", self.ID),
		mBytes:      obs.Default.Counter("mdagent_gossip_bytes_total", "host", self.ID),
		mMsgs:       obs.Default.Counter("mdagent_gossip_msgs_total", "host", self.ID),
		mUpdates:    obs.Default.Counter("mdagent_gossip_updates_total", "host", self.ID),
		mFullSync:   obs.Default.Counter("mdagent_gossip_fullsync_total", "host", self.ID),
		mQueueDepth: obs.Default.Gauge("mdagent_gossip_queue_depth", "host", self.ID),
	}
	// Announce ourselves: the first probes we send carry our own entry.
	n.enqueueLocked(n.self)
	ep.Handle(MsgPing, n.handlePing)
	ep.Handle(MsgPingReq, n.handlePingReq)
	return n
}

// Self returns this node's own membership entry.
func (n *Node) Self() Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.self
}

// Join seeds the table with a known peer (assumed alive until probed).
func (n *Node) Join(peer Member) {
	peer.State = StateAlive
	n.applyTable([]Member{peer})
}

// OnChange registers a callback fired (off the node's lock, on the
// probing goroutine) whenever a member transitions state or is first
// learned. The reporting node rides along so listeners can consult its
// view (e.g. HasQuorum) before acting.
func (n *Node) OnChange(f func(*Node, Member)) {
	n.mu.Lock()
	n.listeners = append(n.listeners, f)
	n.mu.Unlock()
}

// Members returns the full table, sorted by id.
func (n *Node) Members() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, e := range n.members {
		out = append(out, e.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Member returns one entry by host id.
func (n *Node) Member(id string) (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.members[id]
	if !ok {
		return Member{}, false
	}
	return e.Member, true
}

// AliveHosts lists the ids of members this node currently believes alive
// (including itself), sorted.
func (n *Node) AliveHosts() []string {
	var out []string
	for _, m := range n.Members() {
		if m.State == StateAlive {
			out = append(out, m.ID)
		}
	}
	return out
}

// HasQuorum reports whether this node sees a strict majority of the known
// membership alive. An isolated node loses quorum and must not act on its
// (necessarily wrong) belief that everyone else died — the guard that
// keeps a crashed-but-running host from re-homing the world onto itself.
func (n *Node) HasQuorum() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	alive, total := 0, 0
	for _, e := range n.members {
		total++
		if e.State == StateAlive {
			alive++
		}
	}
	return alive*2 > total
}

// Start launches the probe loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				n.Tick()
			}
		}
	}()
}

// Stop halts probing. The node still answers peers until its endpoint
// closes.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Tick runs one protocol round synchronously: sweep overdue suspects,
// every DeadProbeEvery rounds ping one dead member (partition-heal
// rediscovery), then probe the next live member in the shuffled rotation.
// Every FullSyncEvery rounds the probe is a full-table anti-entropy
// exchange instead of a bounded one. Tests drive it directly for
// determinism; Start calls it on a ticker.
func (n *Node) Tick() {
	n.mRounds.Inc()
	n.sweep(time.Now())
	n.mu.Lock()
	n.ticks++
	probeDead := n.cfg.DeadProbeEvery > 0 && n.ticks%uint64(n.cfg.DeadProbeEvery) == 0
	fullSync := n.cfg.FullSyncEvery > 0 && n.ticks%uint64(n.cfg.FullSyncEvery) == 0
	n.mu.Unlock()
	if probeDead {
		if dead, ok := n.deadTarget(); ok {
			// Best-effort: the ping explicitly carries our entry for the
			// peer (its death certificate); a peer that is actually back
			// refutes it by bumping its incarnation, and the refutation in
			// its ack clears the certificate here, whence gossip spreads
			// it. Without this, two sides of a healed partition would
			// never probe each other again. Off the protocol round: in the
			// common case the member really is dead and the ping eats the
			// full ProbeTimeout, which must not stall live probing.
			// Untracked on purpose, like the federation's pushAsync: a
			// probe racing shutdown just reports a closed endpoint.
			load := n.load(dead)
			go n.ping(dead.Endpoint, load)
		}
	}
	target, ok := n.nextTarget()
	if !ok {
		return
	}
	n.probe(target, fullSync)
}

// deadTarget picks one dead member at random.
func (n *Node) deadTarget() (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var pool []Member
	for id, e := range n.members {
		if id != n.self.ID && e.State == StateDead {
			pool = append(pool, e.Member)
		}
	}
	if len(pool) == 0 {
		return Member{}, false
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID < pool[j].ID })
	return pool[n.rng.Intn(len(pool))], true
}

// ConfirmDead re-probes a member this node believes dead, directly and
// then through indirect relays (a severed reporter->member link must not
// "confirm" a live member), as a last check before acting on the
// conviction (e.g. re-homing its applications). An answered probe
// applies the ack's table and then re-reads the entry: a falsely
// convicted live member refutes in the ack (alive at a higher
// incarnation), clearing the conviction — not confirmed. A gracefully
// leaving member also answers for a moment, but its ack carries its own
// death certificate, so the entry stays dead — confirmed, and failover
// may proceed without waiting for its process to exit. A genuinely
// crashed host fails fast (connection refused / netsim host-down), so
// the common failover path pays almost nothing.
func (n *Node) ConfirmDead(id string) bool {
	n.mu.Lock()
	e, ok := n.members[id]
	if !ok {
		n.mu.Unlock()
		return false // unknown member: nothing to act on
	}
	if e.State != StateDead {
		n.mu.Unlock()
		return false // already cleared
	}
	target := e.Member
	n.mu.Unlock()
	// The probe must carry the conviction itself: the certificate is what
	// a falsely convicted member refutes in its ack.
	load := n.load(target)
	if n.ping(target.Endpoint, load) {
		return n.stillDead(id)
	}
	for _, relay := range n.relays(id) {
		if n.pingVia(relay, target, load) {
			return n.stillDead(id)
		}
	}
	return true
}

// stillDead reports whether id remains convicted after an answered
// confirm-probe applied the ack's table.
func (n *Node) stillDead(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.members[id]
	return ok && e.State == StateDead
}

// Rejoin announces this node after a restart or a healed partition: it
// bumps our incarnation past rumors in flight and synchronously pings
// every known member — dead ones included — so death certificates on both
// sides are refuted immediately instead of waiting out the dead-probe
// cadence. A second round runs when the first taught us of a certificate
// our bumped incarnation did not yet clear (a restarted node rejoining a
// cluster that convicted its previous life at a higher incarnation).
func (n *Node) Rejoin() {
	n.mu.Lock()
	n.self.Incarnation++
	n.members[n.self.ID].Member = n.self
	n.enqueueLocked(n.self)
	n.mu.Unlock()
	for round := 0; round < 2; round++ {
		before := n.Self().Incarnation
		for _, m := range n.Members() {
			if m.ID == n.Self().ID {
				continue
			}
			// Full-table on purpose: a rejoin is anti-entropy — both
			// sides reconcile everything, certificates included.
			n.ping(m.Endpoint, n.fullLoad())
		}
		if n.Self().Incarnation == before {
			return // no peer held a certificate we had not already beaten
		}
	}
}

// Leave announces an intentional departure: it publishes our own death
// certificate at the current incarnation and synchronously pings every
// alive peer with it, so the cluster convicts this host immediately
// instead of burning a probe round plus the full suspicion window. The
// certificate uses the normal dead-overrides-alive precedence (no new
// message type), and the leaving flag stops applyTable from refuting the
// echo of our own certificate in the acks. Call before Stop on a clean
// shutdown; a crashed host simply never calls it.
func (n *Node) Leave() {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return
	}
	n.leaving = true
	n.self.State = StateDead
	n.members[n.self.ID].Member = n.self
	n.enqueueLocked(n.self)
	cert := n.self
	var peers []Member
	for id, e := range n.members {
		if id == n.self.ID || e.State != StateAlive {
			continue
		}
		peers = append(peers, e.Member)
	}
	n.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	for _, p := range peers {
		// Each ping must carry the certificate itself; the queued copy
		// alone could be crowded out of a bounded batch by other rumors.
		n.ping(p.Endpoint, n.load(cert))
	}
}

// nextTarget picks the next probeable member in round-robin order over a
// shuffled rotation (SWIM's bounded-staleness target selection).
func (n *Node) nextTarget() (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rotIdx >= len(n.rotation) {
		n.rotation = n.rotation[:0]
		for id, e := range n.members {
			if id == n.self.ID || e.State == StateDead {
				continue
			}
			n.rotation = append(n.rotation, id)
		}
		sort.Strings(n.rotation)
		n.rng.Shuffle(len(n.rotation), func(i, j int) {
			n.rotation[i], n.rotation[j] = n.rotation[j], n.rotation[i]
		})
		n.rotIdx = 0
	}
	for n.rotIdx < len(n.rotation) {
		id := n.rotation[n.rotIdx]
		n.rotIdx++
		if e, ok := n.members[id]; ok && e.State != StateDead {
			return e.Member, true
		}
	}
	return Member{}, false
}

// probe pings target directly, falling back to indirect probes through
// IndirectProbes relays; on total failure the target becomes a suspect.
// A full probe exchanges whole tables (the anti-entropy cadence).
func (n *Node) probe(target Member, full bool) {
	load := n.load()
	if full {
		load = n.fullLoad()
	}
	if n.ping(target.Endpoint, load) {
		return
	}
	for _, relay := range n.relays(target.ID) {
		if n.pingVia(relay, target, load) {
			return
		}
	}
	n.markSuspect(target.ID)
}

// countSend charges one outgoing gossip message to the node's meters.
func (n *Node) countSend(payloadLen, updates int, full bool) {
	n.mBytes.Add(int64(payloadLen))
	n.mMsgs.Inc()
	n.mUpdates.Add(int64(updates))
	if full {
		n.mFullSync.Inc()
	}
}

// ping sends one direct probe and merges the ack's payload.
func (n *Node) ping(endpoint string, load gossipLoad) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
	defer cancel()
	payload := transport.Seal(transport.MustEncode(pingMsg{
		From: n.self.ID, Updates: load.updates, Full: load.full, Table: load.table,
	}))
	n.countSend(len(payload), len(load.updates), load.full)
	var ack ackMsg
	err := n.ep.RequestDecode(ctx, endpoint, MsgPing, payload, &ack)
	if err != nil {
		return false
	}
	n.absorb(ack.Updates, ack.Table, ack.Full)
	return true
}

// pingVia asks relay to probe target on our behalf.
func (n *Node) pingVia(relay, target Member, load gossipLoad) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
	defer cancel()
	payload := transport.Seal(transport.MustEncode(pingReqMsg{
		From: n.self.ID, Target: target, Updates: load.updates, Full: load.full, Table: load.table,
	}))
	n.countSend(len(payload), len(load.updates), load.full)
	var ack ackMsg
	err := n.ep.RequestDecode(ctx, relay.Endpoint, MsgPingReq, payload, &ack)
	if err != nil || !ack.OK {
		return false
	}
	n.absorb(ack.Updates, ack.Table, ack.Full)
	return true
}

// relays picks up to IndirectProbes alive members other than self and the
// target.
func (n *Node) relays(targetID string) []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	var pool []Member
	for id, e := range n.members {
		if id == n.self.ID || id == targetID || e.State != StateAlive {
			continue
		}
		pool = append(pool, e.Member)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID < pool[j].ID })
	n.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > n.cfg.IndirectProbes {
		pool = pool[:n.cfg.IndirectProbes]
	}
	return pool
}

// markSuspect escalates a member to suspect (a no-op if it is already
// suspect or dead).
func (n *Node) markSuspect(id string) {
	n.mu.Lock()
	e, ok := n.members[id]
	if !ok || e.State != StateAlive {
		n.mu.Unlock()
		return
	}
	e.State = StateSuspect
	e.suspectSince = time.Now()
	n.enqueueLocked(e.Member)
	changed := e.Member
	n.mu.Unlock()
	n.notify(changed)
}

// sweep declares overdue suspects dead.
func (n *Node) sweep(now time.Time) {
	n.mu.Lock()
	var dead []Member
	for _, e := range n.members {
		if e.State == StateSuspect && now.Sub(e.suspectSince) >= n.cfg.SuspicionTimeout {
			e.State = StateDead
			n.enqueueLocked(e.Member)
			dead = append(dead, e.Member)
		}
	}
	n.mu.Unlock()
	for _, m := range dead {
		n.notify(m)
	}
}

// tableSnapshot copies the membership table for a full-table exchange.
func (n *Node) tableSnapshot() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tableSnapshotLocked()
}

func (n *Node) tableSnapshotLocked() []Member {
	out := make([]Member, 0, len(n.members))
	for _, e := range n.members {
		out = append(out, e.Member)
	}
	return out
}

// applyTable merges received rumor updates under SWIM's precedence
// rules: higher incarnation wins; at equal incarnation dead > suspect >
// alive; dead additionally overrides any lower incarnation (a death
// certificate does not expire). Rumors about self that are not alive
// are refuted by bumping our incarnation past them. Every accepted
// change — and every refutation — re-enters the dissemination buffer,
// which is how a rumor crosses the cluster in O(log N) rounds without
// anyone sending a full table.
func (n *Node) applyTable(table []Member) { n.merge(table, true) }

// applyFull merges a full-table anti-entropy exchange. Unlike rumor
// updates, what it teaches is not re-queued for broadcast (see absorb);
// refutations of rumors about self still are — they originate here.
func (n *Node) applyFull(table []Member) { n.merge(table, false) }

func (n *Node) merge(table []Member, requeue bool) {
	n.mu.Lock()
	var changed []Member
	for _, m := range table {
		if m.ID == n.self.ID {
			// A leaving node published its own death certificate on
			// purpose; refuting the echo would resurrect it.
			if !n.leaving && m.State != StateAlive && m.Incarnation >= n.self.Incarnation {
				n.self.Incarnation = m.Incarnation + 1
				n.members[n.self.ID].Member = n.self
				// The refutation preempts the queued rumor about us with
				// a fresh budget — it must outrun the suspicion.
				n.enqueueLocked(n.self)
			}
			continue
		}
		e, known := n.members[m.ID]
		if !known {
			e = &memberEntry{Member: m}
			if m.State == StateSuspect {
				e.suspectSince = time.Now()
			}
			n.members[m.ID] = e
			if requeue {
				n.enqueueLocked(e.Member)
			}
			n.insertRotationLocked(m.ID)
			changed = append(changed, e.Member)
			continue
		}
		if !supersedes(m, e.Member) {
			continue
		}
		prev := e.State
		prevInc := e.Incarnation
		e.Member = m
		if m.State == StateSuspect && prev != StateSuspect {
			e.suspectSince = time.Now()
		}
		if requeue && (m.State != prev || m.Incarnation != prevInc) {
			n.enqueueLocked(e.Member)
		}
		if m.State != prev {
			changed = append(changed, e.Member)
		}
	}
	n.mu.Unlock()
	for _, m := range changed {
		n.notify(m)
	}
}

// insertRotationLocked splices a newly learned member into the not-yet-
// probed remainder of the current rotation at a random position, so it
// is probed within one traversal of the ring instead of waiting out the
// current one. Callers hold n.mu.
func (n *Node) insertRotationLocked(id string) {
	if n.rotIdx >= len(n.rotation) {
		return // rotation exhausted; the rebuild picks the member up
	}
	pos := n.rotIdx + n.rng.Intn(len(n.rotation)-n.rotIdx+1)
	n.rotation = append(n.rotation, "")
	copy(n.rotation[pos+1:], n.rotation[pos:])
	n.rotation[pos] = id
}

// supersedes reports whether update m should replace current.
func supersedes(m, current Member) bool {
	if current.State == StateDead {
		// Only a fresh incarnation (a restarted or refuted member) clears
		// a death certificate.
		return m.State == StateAlive && m.Incarnation > current.Incarnation
	}
	if m.State == StateDead {
		// A death certificate overrides suspicion unconditionally, and
		// overrides alive at the same or lower incarnation — but NOT a
		// refuted alive at a higher incarnation. Without the incarnation
		// check, stale certificates circulating after a healed partition
		// keep re-killing members that already refuted them, and the
		// membership ping-pongs dead<->alive forever.
		if current.State == StateAlive {
			return m.Incarnation >= current.Incarnation
		}
		return true
	}
	if m.Incarnation != current.Incarnation {
		return m.Incarnation > current.Incarnation
	}
	return statePrecedence(m.State) > statePrecedence(current.State)
}

func statePrecedence(s State) int {
	switch s {
	case StateAlive:
		return 0
	case StateSuspect:
		return 1
	case StateDead:
		return 2
	}
	return -1
}

func (n *Node) notify(m Member) {
	n.mu.Lock()
	ls := make([]func(*Node, Member), len(n.listeners))
	copy(ls, n.listeners)
	n.mu.Unlock()
	for _, f := range ls {
		f(n, m)
	}
}

// ack builds a probe reply. A full exchange (or a probe from a sender
// we do not know — join bootstrap) is answered with the whole table;
// otherwise the ack leads with our own entry (the O(1) piece
// refutation and leave certificates depend on) plus any must-carry
// entries, followed by the bounded update selection.
func (n *Node) ack(ok, full bool, must ...Member) ([]byte, error) {
	n.mu.Lock()
	var a ackMsg
	if full {
		a = ackMsg{OK: ok, Full: true, Table: n.tableSnapshotLocked()}
	} else {
		load := n.loadLocked(append([]Member{n.self}, must...)...)
		a = ackMsg{OK: ok, Updates: load.updates, Full: load.full, Table: load.table}
	}
	n.mu.Unlock()
	out, err := transport.Encode(a)
	if err == nil {
		n.countSend(len(out), len(a.Updates), a.Full)
	}
	return out, err
}

// knows reports whether id is in the table.
func (n *Node) knows(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.members[id]
	return ok
}

// handlePing answers a direct probe: merge the sender's payload, ack
// with ours.
func (n *Node) handlePing(msg transport.Message) ([]byte, error) {
	var p pingMsg
	if err := transport.DecodeSealed(msg.Payload, &p); err != nil {
		return nil, err
	}
	full := p.Full || !n.knows(p.From)
	n.absorb(p.Updates, p.Table, p.Full)
	return n.ack(true, full)
}

// handlePingReq probes the requested target on the asker's behalf. The
// ack carries our entry for the target so the asker learns what the
// probe taught us (most importantly a refutation the target pushed into
// our table), not just a bare OK.
func (n *Node) handlePingReq(msg transport.Message) ([]byte, error) {
	var p pingReqMsg
	if err := transport.DecodeSealed(msg.Payload, &p); err != nil {
		return nil, err
	}
	full := p.Full || !n.knows(p.From)
	n.absorb(p.Updates, p.Table, p.Full)
	ok := n.ping(p.Target.Endpoint, n.load())
	var must []Member
	if e, found := n.Member(p.Target.ID); found {
		must = append(must, e)
	}
	return n.ack(ok, full, must...)
}
