package cluster

import (
	"crypto/sha256"
	"time"

	"mdagent/internal/owl"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// Transport message types served by cluster nodes and federated centers.
const (
	MsgPing         = "cluster.ping"           // direct SWIM probe
	MsgPingReq      = "cluster.ping-req"       // indirect probe through a relay
	MsgFedDigest    = "cluster.fed-digest"     // anti-entropy digest exchange
	MsgFedPush      = "cluster.fed-push"       // best-effort replication push
	MsgFedSnapDelta = "cluster.fed-snap-delta" // delta-only snapshot push
	MsgFedDurable   = "cluster.fed-durable"    // write-concern-met confirmation
	MsgPutSnapshot  = "cluster.snap-put"       // remote replicator put
	MsgGetSnapshot  = "cluster.snap-get"       // remote snapshot fetch
	MsgDropSnapshot = "cluster.snap-drop"      // remote graceful-stop tombstone
	MsgListSnaps    = "cluster.snap-list"      // remote snapshot-head listing
)

// MemberEndpointName returns the conventional membership endpoint name for
// a host (used by in-process deployments; cmd daemons share their engine
// endpoint instead).
func MemberEndpointName(host string) string { return "cluster@" + host }

// CenterEndpointName returns the conventional endpoint name of a smart
// space's federated registry center.
func CenterEndpointName(space string) string { return "registry@" + space }

// pingMsg is a direct probe. Probe payloads are sealed behind the
// transport version byte, and dissemination is bounded: Updates carries
// at most Config.MaxPiggyback queued member updates selected
// fewest-transmissions-first, so the payload is O(1) in cluster size.
// Full marks a full-table anti-entropy exchange (join bootstrap, Rejoin,
// the FullSyncEvery cadence, and the FullTableGossip baseline): Table
// carries the sender's whole table and the ack answers in kind.
type pingMsg struct {
	From    string
	Updates []Member
	Full    bool
	Table   []Member
}

// ackMsg acknowledges a probe. The responder's own entry always leads
// Updates (O(1), and it is what lets a falsely convicted member refute
// a confirm-probe and a leaver co-sign its own certificate); the rest
// is the responder's bounded update selection, or its full table when
// the exchange is Full.
type ackMsg struct {
	OK      bool
	Updates []Member
	Full    bool
	Table   []Member
}

// pingReqMsg asks a relay to probe Target on the sender's behalf (SWIM's
// indirect probe, which distinguishes a dead target from a lossy path).
// Piggybacking follows pingMsg.
type pingReqMsg struct {
	From    string
	Target  Member
	Updates []Member
	Full    bool
	Table   []Member
}

// RecordKind classifies a replicated registry record.
type RecordKind int

// Replicated record kinds.
const (
	RecordApp RecordKind = iota + 1
	RecordResource
	RecordDevice
	RecordSnapshot // an application's latest replicated state snapshot
	RecordBundle   // a signed portable app bundle (raw, signature-checked at install)
)

// Record is one versioned, replicated registry entry. Exactly one of App,
// Res, Dev, Snap, Bdl is meaningful, selected by Kind; gob cannot carry
// interfaces without registration churn, so the union is explicit.
// (Adding a union arm is gob-additive: old decoders ignore the unknown
// field, and old centers never receive RecordBundle pushes they would
// misfile because applyToRegistry rejects unknown kinds.)
type Record struct {
	Key     string // store key, e.g. "app/hostA/smart-media-player"
	Kind    RecordKind
	Origin  string // space of the last writer (concurrent-update tiebreak)
	Version vclock.Version
	Deleted bool // tombstone: the entry was unregistered

	App  registry.AppRecord
	Res  owl.Resource
	Dev  wsdl.DeviceProfile
	Snap state.SnapshotRecord
	Bdl  registry.BundleRecord
}

// digestMsg asks a peer center for every record the sender's digest has
// not seen.
type digestMsg struct {
	From   string // sender space
	Digest map[string]vclock.Version
}

// digestReply carries the records the responder holds that the digest
// does not dominate.
type digestReply struct {
	Records []Record
}

// pushMsg carries freshly written records to a peer center.
type pushMsg struct {
	From    string
	Records []Record
}

// durableMsg tells peers a snapshot write met its concern: a peer whose
// stored record is exactly Version stamps its copy durable and refreshes
// its durable stash. Best-effort and FIFO-ordered behind the data push
// it confirms; without it, a peer's stash would only ever advance via
// anti-entropy deliveries of already-stamped records, and failover's
// durable-preference could roll back to an arbitrarily old capture.
type durableMsg struct {
	From    string
	Key     string
	Version vclock.Version
}

// snapDeltaAck acknowledges a delta push. Applied reports that the
// receiver now holds the pushed write: it chained the delta, or already
// held that version or a newer one. A false ack tells a durable pusher
// to fall back to a full-record push (the receiver's base diverged, so
// the delta alone cannot make the write durable there).
type snapDeltaAck struct {
	Applied bool
}

// snapDeltaMsg carries just the newest delta of a snapshot record to a
// peer center — kilobytes where a full record push would be megabytes. A
// peer applies it only when its copy's newest state digest matches
// BaseDigest and Version strictly supersedes its own; otherwise
// anti-entropy repairs with the full record.
type snapDeltaMsg struct {
	From       string // writer space
	Key        string
	Version    vclock.Version
	Seq        uint64
	Host       string
	Space      string
	At         time.Time
	BaseDigest [sha256.Size]byte
	NewDigest  [sha256.Size]byte
	Delta      []byte // EncodeDelta frame
}

// Snapshot wire protocol bodies (Center.Serve / SnapshotClient): remote
// daemons join the state pipeline over the same endpoints that serve the
// registry protocol.
type (
	putSnapshotReply struct {
		Stamp state.SnapshotStamp
		// NeedFull tells the remote replicator to re-send a full frame
		// (carried in-band: typed errors do not survive the transport).
		NeedFull bool
		// NotDurable tells the remote replicator the put landed but fell
		// short of its write concern (in-band for the same reason), so it
		// re-queues instead of advancing its acked base.
		NotDurable bool
	}

	// getSnapshotReq fetches an app's freshest snapshot. When the
	// requester already holds a record of the app (Have set), the Have*
	// fields describe it, and a center whose copy extends the same base
	// replies with just the missing delta tail instead of the full
	// record. Zero Have preserves the PR 5 behaviour for old clients.
	getSnapshotReq struct {
		App         string
		Have        bool
		HaveBaseSeq uint64
		HaveSeq     uint64
		HaveDigest  [sha256.Size]byte
	}

	getSnapshotReply struct {
		Rec   state.SnapshotRecord
		Found bool
		// DeltaOnly marks Rec as a tail: it carries the head's metadata
		// and only the deltas past the requester's HaveSeq, no base
		// frame. The requester grafts the tail onto its cached record.
		DeltaOnly bool
	}

	dropSnapshotReq struct{ App, Host string }

	listSnapsReply struct {
		Heads []state.SnapshotHead
	}
)
