package cluster

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/store"
	"mdagent/internal/transport"
)

// newSnapRig builds one served center plus a client endpoint on a local
// fabric — the smallest wire-protocol fixture.
func newSnapRig(t *testing.T) (*Center, *transport.Endpoint) {
	t.Helper()
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	regDB, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := fab.Attach(CenterEndpointName("alpha"), "")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCenter("alpha", regDB, ep, testConfig())
	c.Serve(ep)
	cliEp, err := fab.Attach("client@test", "")
	if err != nil {
		t.Fatal(err)
	}
	return c, cliEp
}

// TestSnapPutFastCodecRoundTrip drives the raw v2 body codec over the
// awkward values: epoch timestamps (the virtual testbed clock starts at
// Unix(0,0)), empty concern, real digests, and a multi-put batch frame.
func TestSnapPutFastCodecRoundTrip(t *testing.T) {
	puts := []state.SnapshotPut{
		mustSnapshot(t, "player", "hostA", "pos-1"),
		mustDelta(t, "player", "hostA", "pos-1", "pos-2"),
	}
	puts[0].Concern = "quorum"
	puts[1].At = time.Unix(0, 0) // epoch, not "zero time"

	payload := encodeSnapPutBatchFast(puts)
	op, body, err := transport.OpenFast(payload)
	if err != nil || op != transport.OpSnapPutBatch {
		t.Fatalf("OpenFast: op=%#x err=%v", op, err)
	}
	r := transport.NewFastReader(body)
	if n := r.Uint(); n != 2 {
		t.Fatalf("batch count = %d", n)
	}
	for i := range puts {
		got := readSnapPut(r)
		if err := r.Err(); err != nil {
			t.Fatalf("put %d decode: %v", i, err)
		}
		want := puts[i]
		if got.App != want.App || got.Host != want.Host || got.Delta != want.Delta ||
			got.Concern != want.Concern || !got.At.Equal(want.At) {
			t.Fatalf("put %d header mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		if !bytes.Equal(got.Frame, want.Frame) {
			t.Fatalf("put %d frame mismatch (%d vs %d bytes)", i, len(got.Frame), len(want.Frame))
		}
		if got.BaseDigest != want.BaseDigest || got.NewDigest != want.NewDigest {
			t.Fatalf("put %d digest mismatch", i)
		}
	}

	outcomes := []snapOutcome{
		{Stamp: state.SnapshotStamp{Seq: 7, BaseSeq: 3, Chain: 4}},
		{NeedFull: true},
		{Stamp: state.SnapshotStamp{Seq: 9}, NotDurable: true},
		{Err: "disk on fire"},
	}
	var b []byte
	for _, o := range outcomes {
		b = appendSnapOutcome(b, o)
	}
	or := transport.NewFastReader(b)
	for i, want := range outcomes {
		if got := readSnapOutcome(or); got != want {
			t.Fatalf("outcome %d = %+v, want %+v", i, got, want)
		}
	}
	if err := or.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotFastPathAgainstCenter is the diagonal and one off-diagonal
// cell: a negotiating client confirms v2 against a new center with the
// in-band signals (need-full) intact, and a gob-pinned client — how a
// pre-v2 binary behaves, byte for byte — still round-trips against the
// same center.
func TestSnapshotFastPathAgainstCenter(t *testing.T) {
	_, cliEp := newSnapRig(t)
	ctx := context.Background()

	cli := NewSnapshotClient(cliEp, CenterEndpointName("alpha"))
	if cli.Proto() != 0 {
		t.Fatalf("pre-put proto = %d, want 0 (untried)", cli.Proto())
	}
	stamp, err := cli.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1"))
	if err != nil || stamp.Seq != 1 {
		t.Fatalf("fast full put: stamp=%+v err=%v", stamp, err)
	}
	if cli.Proto() != transport.ProtoV2 {
		t.Fatalf("proto after put = %d, want %d (v2 confirmed)", cli.Proto(), transport.ProtoV2)
	}
	stamp2, err := cli.PutSnapshot(ctx, mustDelta(t, "player", "hostA", "pos-1", "pos-2"))
	if err != nil || stamp2.Seq != 2 || stamp2.Chain != 1 {
		t.Fatalf("fast delta put: stamp=%+v err=%v", stamp2, err)
	}
	// Typed in-band signal survives the compact encoding.
	if _, err := cli.PutSnapshot(ctx, mustDelta(t, "player", "hostA", "bogus", "pos-3")); !errors.Is(err, state.ErrNeedFull) {
		t.Fatalf("stale-base delta over v2: err = %v, want ErrNeedFull", err)
	}
	if rec, found, err := cli.LatestSnapshot(ctx, "player"); err != nil || !found || snapValue(t, rec) != "pos-2" {
		t.Fatalf("fetch after fast puts: found=%v err=%v", found, err)
	}

	// Old client, new server: the pinned-gob path is exactly the frame
	// sequence a pre-v2 client sends.
	old := NewSnapshotClient(cliEp, CenterEndpointName("alpha"))
	old.SetProto(transport.ProtoVersion)
	stamp3, err := old.PutSnapshot(ctx, mustDelta(t, "player", "hostA", "pos-2", "pos-3"))
	if err != nil || stamp3.Seq != 3 {
		t.Fatalf("gob put against v2 center: stamp=%+v err=%v", stamp3, err)
	}
	if old.Proto() != transport.ProtoVersion {
		t.Fatalf("pinned client drifted to proto %d", old.Proto())
	}
	if _, err := old.PutSnapshot(ctx, mustDelta(t, "player", "hostA", "bogus", "x")); !errors.Is(err, state.ErrNeedFull) {
		t.Fatalf("stale-base delta over gob: err = %v, want ErrNeedFull", err)
	}
}

// TestSnapshotClientDowngradesToGobCenter is the other off-diagonal
// cell: a negotiating client against a v1-era center (simulated with the
// old handler shape — DecodeSealed or refuse) hits the typed version
// refusal once, re-sends as gob, and sticks to gob for every later put
// without another wasted round trip.
func TestSnapshotClientDowngradesToGobCenter(t *testing.T) {
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	srvEp, err := fab.Attach("old-center", "")
	if err != nil {
		t.Fatal(err)
	}
	var fastFrames, gobFrames int
	srvEp.Handle(MsgPutSnapshot, func(msg transport.Message) ([]byte, error) {
		// The pre-v2 handler body: straight to DecodeSealed, whose
		// version check refuses the fast frame with ErrVersion.
		var put state.SnapshotPut
		if err := transport.DecodeSealed(msg.Payload, &put); err != nil {
			fastFrames++
			return nil, err
		}
		gobFrames++
		return transport.Encode(putSnapshotReply{Stamp: state.SnapshotStamp{Seq: uint64(gobFrames)}})
	})
	cliEp, err := fab.Attach("new-client", "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewSnapshotClient(cliEp, "old-center")
	ctx := context.Background()

	put := mustSnapshot(t, "player", "hostA", "pos-1")
	stamp, err := cli.PutSnapshot(ctx, put)
	if err != nil || stamp.Seq != 1 {
		t.Fatalf("first put through downgrade: stamp=%+v err=%v", stamp, err)
	}
	if cli.Proto() != transport.ProtoVersion {
		t.Fatalf("proto after refusal = %d, want %d (gob, sticky)", cli.Proto(), transport.ProtoVersion)
	}
	if stamp, err = cli.PutSnapshot(ctx, put); err != nil || stamp.Seq != 2 {
		t.Fatalf("second put: stamp=%+v err=%v", stamp, err)
	}
	if fastFrames != 1 {
		t.Fatalf("old center saw %d fast frames, want exactly 1 (the probe)", fastFrames)
	}
	if gobFrames != 2 {
		t.Fatalf("old center saw %d gob puts, want 2", gobFrames)
	}

	// Batches degrade to sequential singles on a gob peer — same
	// outcomes, no fast frame even attempted now the downgrade stuck.
	outs, err := cli.PutSnapshotBatch(ctx, []state.SnapshotPut{put, put})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0].Err != nil || outs[1].Err != nil {
		t.Fatalf("batch fallback outcomes = %+v", outs)
	}
	if outs[0].Stamp.Seq != 3 || outs[1].Stamp.Seq != 4 {
		t.Fatalf("batch fallback stamps = %d, %d, want 3, 4", outs[0].Stamp.Seq, outs[1].Stamp.Seq)
	}
	if fastFrames != 1 || gobFrames != 4 {
		t.Fatalf("after batch: fast=%d gob=%d, want 1 and 4", fastFrames, gobFrames)
	}
}

// TestSnapshotBatchPutMixedOutcomes sends one batch holding a good full
// put, a good chained delta, and a stale-base delta: the bad entry comes
// back as a per-entry ErrNeedFull while its batchmates keep their
// stamps — one refusal cannot void the batch.
func TestSnapshotBatchPutMixedOutcomes(t *testing.T) {
	_, cliEp := newSnapRig(t)
	cli := NewSnapshotClient(cliEp, CenterEndpointName("alpha"))
	ctx := context.Background()

	outs, err := cli.PutSnapshotBatch(ctx, []state.SnapshotPut{
		mustSnapshot(t, "player", "hostA", "pos-1"),
		mustDelta(t, "player", "hostA", "pos-1", "pos-2"),
		mustDelta(t, "player", "hostA", "bogus", "pos-3"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Err != nil || outs[0].Stamp.Seq != 1 {
		t.Fatalf("outcome 0 = %+v", outs[0])
	}
	if outs[1].Err != nil || outs[1].Stamp.Seq != 2 || outs[1].Stamp.Chain != 1 {
		t.Fatalf("outcome 1 = %+v", outs[1])
	}
	if !errors.Is(outs[2].Err, state.ErrNeedFull) {
		t.Fatalf("outcome 2 err = %v, want ErrNeedFull", outs[2].Err)
	}
	if cli.Proto() != transport.ProtoV2 {
		t.Fatalf("proto after batch = %d, want v2", cli.Proto())
	}
	// The good entries actually landed.
	if rec, found, err := cli.LatestSnapshot(ctx, "player"); err != nil || !found || snapValue(t, rec) != "pos-2" {
		t.Fatalf("state after mixed batch: found=%v err=%v", found, err)
	}
}
