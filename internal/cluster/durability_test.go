package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"mdagent/internal/registry"
	"mdagent/internal/store"
	"mdagent/internal/transport"
)

// durableConfig is testConfig with a synchronous write concern.
func durableConfig(wc WriteConcern) Config {
	cfg := testConfig()
	cfg.WriteConcern = wc
	cfg.AckTimeout = 200 * time.Millisecond
	return cfg
}

// newCenterTrio builds three fully meshed centers on one local fabric.
func newCenterTrio(t *testing.T, cfg Config) [3]*Center {
	t.Helper()
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	var out [3]*Center
	for i, space := range []string{"alpha", "beta", "gamma"} {
		regDB, err := registry.New(store.OpenMemory())
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fab.Attach(CenterEndpointName(space), "")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = NewCenter(space, regDB, ep, cfg)
	}
	for i, a := range out {
		for j, b := range out {
			if i != j {
				a.AddPeer(b.Space(), CenterEndpointName(b.Space()))
			}
		}
	}
	return out
}

// TestDurableWriteBlocksUntilPeersHoldIt is the write-concern contract:
// when a quorum write returns without error, the pushed record is
// ALREADY on enough peers to survive the writer dying on the next
// instruction — no drain, no anti-entropy round.
func TestDurableWriteBlocksUntilPeersHoldIt(t *testing.T) {
	trio := newCenterTrio(t, durableConfig(WriteQuorum))
	ctx := context.Background()

	if err := trio[0].RegisterApp(ctx, registry.AppRecord{
		Name: "player", Host: "hostA", Description: appDesc("player"), Running: true,
	}); err != nil {
		t.Fatal(err)
	}
	onPeers := 0
	for _, peer := range trio[1:] {
		if _, found, _ := peer.LookupApp(ctx, "player", "hostA"); found {
			onPeers++
		}
	}
	if onPeers < 1 {
		t.Fatalf("quorum RegisterApp returned before any peer held the record")
	}

	if _, err := trio[0].PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1")); err != nil {
		t.Fatal(err)
	}
	onPeers = 0
	for _, peer := range trio[1:] {
		if _, ok := peer.LatestSnapshot("player"); ok {
			onPeers++
		}
	}
	if onPeers < 1 {
		t.Fatalf("quorum PutSnapshot returned before any peer held the snapshot")
	}
	// The writer's own copy carries the durability stamp, and the
	// durable stash serves it.
	if rec, ok := trio[0].LatestSnapshot("player"); !ok || !rec.Durable {
		t.Fatalf("writer head record not stamped durable: ok=%v durable=%v", ok, rec.Durable)
	}
	if dur, ok := trio[0].LatestDurableSnapshot("player"); !ok || snapValue(t, dur) != "pos-1" {
		t.Fatalf("durable stash missing or wrong: ok=%v", ok)
	}
	// The best-effort confirm (MsgFedDurable, FIFO-ordered behind the
	// data push) propagates the stamp to acking peers, so THEIR failover
	// planning prefers the same capture instead of a frozen older stash.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stamped := 0
		for _, peer := range trio[1:] {
			if dur, ok := peer.LatestDurableSnapshot("player"); ok && dur.Seq == 1 {
				stamped++
			}
		}
		if stamped >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("durability confirm never stamped any acking peer")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDurableWriteShortfallReturnsErrNotDurable cuts the writer off from
// every peer (peers registered but their endpoints never attached): the
// write must land locally, return ErrNotDurable, and leave the record
// unstamped.
func TestDurableWriteShortfallReturnsErrNotDurable(t *testing.T) {
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	regDB, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := fab.Attach(CenterEndpointName("alpha"), "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := durableConfig(WriteOne)
	cfg.ProbeTimeout = 30 * time.Millisecond
	cfg.AckTimeout = 100 * time.Millisecond
	c := NewCenter("alpha", regDB, ep, cfg)
	c.AddPeer("beta", CenterEndpointName("beta")) // never attached: unreachable
	ctx := context.Background()

	err = c.RegisterApp(ctx, registry.AppRecord{
		Name: "player", Host: "hostA", Description: appDesc("player"),
	})
	if !errors.Is(err, ErrNotDurable) {
		t.Fatalf("RegisterApp err = %v, want ErrNotDurable", err)
	}
	if _, found, _ := c.LookupApp(ctx, "player", "hostA"); !found {
		t.Fatal("write did not land locally despite the shortfall")
	}

	stamp, err := c.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1"))
	if !errors.Is(err, ErrNotDurable) {
		t.Fatalf("PutSnapshot err = %v, want ErrNotDurable", err)
	}
	if stamp.Seq != 1 {
		t.Fatalf("shortfall put did not return the local stamp: %+v", stamp)
	}
	if rec, ok := c.LatestSnapshot("player"); !ok || rec.Durable {
		t.Fatalf("record = ok:%v durable:%v, want stored but unstamped", ok, rec.Durable)
	}
	if _, ok := c.LatestDurableSnapshot("player"); ok {
		t.Fatal("durable stash filled by a write that never met its concern")
	}
}

// TestDegradedModeFailsFast wires a membership view that declares every
// peer unreachable: a quorum write must return ErrNotDurable immediately
// (no ack-timeout wait) and report Degraded.
func TestDegradedModeFailsFast(t *testing.T) {
	cfg := durableConfig(WriteQuorum)
	cfg.AckTimeout = 5 * time.Second // a timed-out wait would blow the test budget
	trio := newCenterTrio(t, cfg)
	trio[0].SetReachable(func(string) bool { return false })
	var events []DurabilityEvent
	trio[0].OnDurability(func(ev DurabilityEvent) { events = append(events, ev) })

	start := time.Now()
	err := trio[0].RegisterApp(context.Background(), registry.AppRecord{
		Name: "player", Host: "hostA", Description: appDesc("player"),
	})
	if !errors.Is(err, ErrNotDurable) {
		t.Fatalf("degraded write err = %v, want ErrNotDurable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("degraded write took %v, want a fast fail", elapsed)
	}
	if len(events) != 1 || !events[0].Degraded || events[0].Durable {
		t.Fatalf("durability events = %+v, want one degraded report", events)
	}
}

// TestDurableDeltaFallsBackToFullRecord exercises the ack-carrying delta
// push: the peer never saw the base (it was written while the peer's
// endpoint did not exist), so the delta push NACKs and the durable
// pusher must land the whole record instead — the write concern is met
// and the peer's copy reassembles to the new value.
func TestDurableDeltaFallsBackToFullRecord(t *testing.T) {
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	mk := func(space string) *Center {
		regDB, err := registry.New(store.OpenMemory())
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fab.Attach(CenterEndpointName(space), "")
		if err != nil {
			t.Fatal(err)
		}
		cfg := durableConfig(WriteOne)
		cfg.ProbeTimeout = 50 * time.Millisecond
		return NewCenter(space, regDB, ep, cfg)
	}
	a := mk("alpha")
	a.AddPeer("beta", CenterEndpointName("beta"))
	ctx := context.Background()

	// Base write while beta does not exist: lands locally, not durable.
	if _, err := a.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1")); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("base put err = %v, want ErrNotDurable (no peer yet)", err)
	}

	// Beta appears (restarted center). It holds nothing.
	b := mk("beta")
	b.AddPeer("alpha", CenterEndpointName("alpha"))

	// A delta put against the stored base: beta cannot chain it, so the
	// durable push must fall back to the full record and still ack.
	if _, err := a.PutSnapshot(ctx, mustDelta(t, "player", "hostA", "pos-1", "pos-2")); err != nil {
		t.Fatalf("delta put with fallback: %v", err)
	}
	got, ok := b.LatestSnapshot("player")
	if !ok {
		t.Fatal("fallback full record never reached the revived peer")
	}
	if v := snapValue(t, got); v != "pos-2" {
		t.Fatalf("peer value = %q, want pos-2", v)
	}
	if rec, _ := a.LatestSnapshot("player"); !rec.Durable {
		t.Fatal("delta write not stamped durable after the fallback ack")
	}
}

// TestServeRejectsMalformedWriteConcernHeader sends a put whose
// write-concern header parses to nothing sensible: the center must
// refuse it outright — before storing or enqueueing anything — and keep
// serving valid puts and peer pushes afterwards (the FIFO push workers
// must not be poisoned).
func TestServeRejectsMalformedWriteConcernHeader(t *testing.T) {
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	mk := func(space string) *Center {
		regDB, err := registry.New(store.OpenMemory())
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fab.Attach(CenterEndpointName(space), "")
		if err != nil {
			t.Fatal(err)
		}
		return NewCenter(space, regDB, ep, testConfig()).Serve(ep)
	}
	a, b := mk("alpha"), mk("beta")
	a.AddPeer("beta", CenterEndpointName("beta"))
	b.AddPeer("alpha", CenterEndpointName("alpha"))
	cliEp, err := fab.Attach("client@test", "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewSnapshotClient(cliEp, CenterEndpointName("alpha"))
	ctx := context.Background()

	bad := mustSnapshot(t, "player", "hostA", "pos-1")
	bad.Concern = "paxos"
	if _, err := cli.PutSnapshot(ctx, bad); err == nil {
		t.Fatal("malformed write-concern header accepted")
	}
	if _, ok := a.LatestSnapshot("player"); ok {
		t.Fatal("malformed put stored a record")
	}

	// The handler refused before touching the push path: valid puts
	// still work and still replicate to the peer.
	good := mustSnapshot(t, "player", "hostA", "pos-2")
	good.Concern = string(WriteAsync)
	if _, err := cli.PutSnapshot(ctx, good); err != nil {
		t.Fatalf("valid put after malformed header: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, ok := b.LatestSnapshot("player"); ok && snapValue(t, got) == "pos-2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("push worker never delivered after the malformed request")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSnapshotClientConnectionDropMidAck runs a center-shaped TCP
// listener that reads each request and slams the connection shut before
// any reply bytes: the client must surface a bounded error (its
// context), not a hang or a panic, and must recover once pointed at a
// real center.
func TestSnapshotClientConnectionDropMidAck(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Read exactly one request frame, then drop the connection
			// without replying — the "mid-ack" failure.
			var msg transport.Message
			_ = gob.NewDecoder(conn).Decode(&msg)
			conn.Close()
		}
	}()

	node, err := transport.ListenTCP("client@test", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.AddPeer(CenterEndpointName("drop"), ln.Addr().String())
	cli := NewSnapshotClient(node.Endpoint(), CenterEndpointName("drop"))

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1"))
	if err == nil {
		t.Fatal("put against a connection-dropping center reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client hung %v on a dropped connection", elapsed)
	}

	// Recovery: the same client node reaches a real center afterwards.
	regDB, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ListenTCP(CenterEndpointName("real"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	NewCenter("real", regDB, srv.Endpoint(), testConfig()).Serve(srv.Endpoint())
	node.AddPeer(CenterEndpointName("real"), srv.Addr())
	cli2 := NewSnapshotClient(node.Endpoint(), CenterEndpointName("real"))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := cli2.PutSnapshot(ctx2, mustSnapshot(t, "player", "hostA", "pos-2")); err != nil {
		t.Fatalf("client did not recover after the dropped connection: %v", err)
	}

	ln.Close()
	wg.Wait()
}

// TestFailoverPrefersDurableSnapshot is the Rehome bugfix: with a
// durable (quorum-acked) capture on record and a fresher capture that
// never met its concern, failover must restore the durable one — the
// fresher write may be a minority-partition artifact the rest of the
// federation never saw.
func TestFailoverPrefersDurableSnapshot(t *testing.T) {
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	mk := func(space string, cfg Config) *Center {
		regDB, err := registry.New(store.OpenMemory())
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fab.Attach(CenterEndpointName(space), "")
		if err != nil {
			t.Fatal(err)
		}
		return NewCenter(space, regDB, ep, cfg)
	}
	cfg := durableConfig(WriteQuorum)
	cfg.ProbeTimeout = 50 * time.Millisecond
	cfg.AckTimeout = 100 * time.Millisecond
	a := mk("alpha", cfg)
	b := mk("beta", testConfig())
	a.AddPeer("beta", CenterEndpointName("beta"))
	b.AddPeer("alpha", CenterEndpointName("alpha"))
	ctx := context.Background()

	// Durable capture: both centers hold pos-1, alpha stamps it.
	if _, err := a.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-1")); err != nil {
		t.Fatal(err)
	}

	// The federation partitions: alpha's pushes fail, so a fresher
	// capture lands only on alpha and comes back ErrNotDurable.
	a.mu.Lock()
	a.peers["beta"] = "severed@nowhere"
	a.pushers = map[string]chan pushItem{} // fresh workers against the dead name
	a.mu.Unlock()
	if _, err := a.PutSnapshot(ctx, mustSnapshot(t, "player", "hostA", "pos-2")); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("partitioned put err = %v, want ErrNotDurable", err)
	}

	f := &Failover{Center: a, RestoreState: true}
	snap := f.snapshotFor("player")
	if snap == nil {
		t.Fatal("no snapshot chosen")
	}
	if !snap.Durable {
		t.Fatalf("failover picked the unacked head (seq %d)", snap.Seq)
	}
	if v := snapValue(t, *snap); v != "pos-1" {
		t.Fatalf("restored value = %q, want the quorum-acked pos-1", v)
	}

	// Sanity: with no durable copy at all, the head is still used.
	f2 := &Failover{Center: b, RestoreState: true}
	if snap := f2.snapshotFor("player"); snap == nil || snapValue(t, *snap) != "pos-1" {
		t.Fatal("plain head restore broken on the peer")
	}
}
