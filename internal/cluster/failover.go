package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mdagent/internal/registry"
	"mdagent/internal/state"
)

// Rehoming is one completed failover: an application that was running on
// a dead host relaunched on a survivor.
type Rehoming struct {
	App      string
	From     string // dead host
	To       string // surviving host the app was re-homed onto
	NewSpace string
	// Restored reports that the relaunch carried a replicated state
	// snapshot (state pipeline) instead of starting from a bare skeleton.
	Restored bool
	// SnapshotSeq is the restored snapshot's capture sequence (0 when no
	// snapshot was restored).
	SnapshotSeq uint64
}

// LaunchFunc relaunches the application described by rec (its record on
// the dead host) on the target host and returns the new installation
// record to register — internal/core wires this to the target host's
// migration engine, reusing the clone-dispatch restore machinery (factory
// instantiation, paper §4.2.2). snap, when non-nil, is the freshest
// replicated state snapshot; the launcher unwraps it into the new
// instance before resuming so the application continues where it left
// off, and reports via restored whether it actually applied it (a retried
// failover finding the app already relaunched, or a frame that fails its
// decode, degrades to a launch without state).
type LaunchFunc func(rec registry.AppRecord, target string, snap *state.SnapshotRecord) (newRec registry.AppRecord, restored bool, err error)

// Failover plans and executes re-homing when membership declares a host
// dead: every application recorded as *running* on the dead host is
// relaunched on the best surviving host, chosen from the federated
// registry (prefer hosts that already hold an installation, then the most
// completely provisioned one). The registry is updated through the
// replicating center, so every space sees the app's new home. With
// RestoreState set, the relaunch restores the freshest replicated
// snapshot the planning center holds, so in-flight component state
// survives the crash.
type Failover struct {
	// Center is the replicated registry view used for planning and for
	// recording outcomes.
	Center *Center
	// Alive lists host ids currently believed alive (the reporter node's
	// view); the dead host is excluded by the planner regardless.
	Alive func() []string
	// Launch relaunches one application on a chosen host.
	Launch LaunchFunc
	// RestoreState enables snapshot restoration (Config.ReplicateState).
	RestoreState bool
}

// Rehome re-homes every application running on deadHost. It returns the
// successful rehomings; a per-app failure aborts with the rehomings
// completed so far.
func (f *Failover) Rehome(ctx context.Context, deadHost string) ([]Rehoming, error) {
	recs, err := f.Center.Registry().AppsOnHost(deadHost)
	if err != nil {
		return nil, err
	}
	alive := make(map[string]bool)
	for _, h := range f.Alive() {
		if h != deadHost {
			alive[h] = true
		}
	}
	var done []Rehoming
	for _, rec := range recs {
		if !rec.Running {
			continue // skeleton installs have nothing to re-home
		}
		target, err := f.pickTarget(rec, alive)
		if err != nil {
			return done, fmt.Errorf("cluster: rehome %s from %s: %w", rec.Name, deadHost, err)
		}
		snap := f.snapshotFor(rec.Name)
		newRec, restored, err := f.Launch(rec, target, snap)
		if err != nil {
			return done, fmt.Errorf("cluster: relaunch %s on %s: %w", rec.Name, target, err)
		}
		newRec.Running = true
		// A durability shortfall on the bookkeeping writes must not abort
		// the failover: the records landed at the planning center and
		// anti-entropy keeps retrying delivery — aborting would strand
		// the remaining apps over an advisory error.
		if err := f.Center.RegisterApp(ctx, newRec); err != nil && !errors.Is(err, ErrNotDurable) {
			return done, err
		}
		if err := f.Center.UnregisterApp(ctx, rec.Name, deadHost); err != nil && !errors.Is(err, ErrNotDurable) {
			return done, err
		}
		r := Rehoming{App: rec.Name, From: deadHost, To: target, NewSpace: newRec.Space, Restored: restored}
		if restored && snap != nil {
			r.SnapshotSeq = snap.Seq
		}
		done = append(done, r)
	}
	return done, nil
}

// snapshotFor fetches the replicated snapshot to restore an app from
// when state restoration is enabled, verifying every frame in the chosen
// record — base and delta chain — by header and checksum (cheap, no
// decode; the launcher reassembles exactly once) so a corrupt record
// degrades to a skeleton relaunch instead of failing the failover.
//
// When the head record is fresher but never met its write concern, the
// planner prefers the last quorum-acked copy: an unacked head may be a
// minority-partition write the rest of the federation never saw, and
// restoring it would fork state the survivors cannot reconcile. With
// WriteAsync (the default) no record is ever stamped durable and the
// head is restored as before.
func (f *Failover) snapshotFor(appName string) *state.SnapshotRecord {
	if !f.RestoreState {
		return nil
	}
	sr, ok := f.Center.LatestSnapshot(appName)
	if !ok {
		return nil
	}
	if !sr.Durable {
		if dur, ok := f.Center.LatestDurableSnapshot(appName); ok && dur.Verify() == nil {
			return &dur
		}
	}
	if err := sr.Verify(); err != nil {
		// Corrupt head: the durable stash is a second chance before
		// degrading to a skeleton relaunch.
		if dur, ok := f.Center.LatestDurableSnapshot(appName); ok && dur.Verify() == nil {
			return &dur
		}
		return nil
	}
	return &sr
}

// pickTarget ranks surviving hosts for one application: hosts already
// holding an installation record beat bare hosts, more installed
// components beat fewer, and host id breaks ties deterministically.
func (f *Failover) pickTarget(rec registry.AppRecord, alive map[string]bool) (string, error) {
	installs, err := f.Center.Registry().FindApp(rec.Name)
	if err != nil {
		return "", err
	}
	type candidate struct {
		host       string
		components int
	}
	var cands []candidate
	for _, inst := range installs {
		if alive[inst.Host] {
			cands = append(cands, candidate{inst.Host, len(inst.Components)})
		}
	}
	if len(cands) == 0 {
		// No surviving installation: any alive host can host a bare
		// restart from the interface description.
		for h := range alive {
			cands = append(cands, candidate{h, 0})
		}
	}
	if len(cands) == 0 {
		return "", fmt.Errorf("no surviving host")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].components != cands[j].components {
			return cands[i].components > cands[j].components
		}
		return cands[i].host < cands[j].host
	})
	return cands[0].host, nil
}
