package cluster

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"

	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// Fast (ProtoV2) encoding of the snapshot hot path. A put body is
//
//	string app, string host, string space, time at, bool delta,
//	bytes frame, 32 raw base-digest bytes, 32 raw new-digest bytes,
//	string concern
//
// and a put outcome (reply body) is
//
//	byte flags (bit0 need-full, bit1 not-durable),
//	uvarint seq, uvarint base-seq, uvarint chain
//
// Batched variants prefix a uvarint count and concatenate the bodies;
// a batch outcome adds bit2 (errored) + an error string per entry, so
// one bad put does not poison its batchmates' stamps. Gob (v1 seals)
// remains the fallback for pre-v2 peers — the codec changes, the
// semantics (in-band need-full/not-durable, write-concern header) do
// not.

const (
	snapFlagNeedFull   byte = 1 << 0
	snapFlagNotDurable byte = 1 << 1
	snapFlagErr        byte = 1 << 2
)

// appendSnapPut appends one put body (no frame header).
func appendSnapPut(b []byte, put state.SnapshotPut) []byte {
	b = transport.AppendString(b, put.App)
	b = transport.AppendString(b, put.Host)
	b = transport.AppendString(b, put.Space)
	b = transport.AppendTime(b, put.At)
	b = transport.AppendBool(b, put.Delta)
	b = transport.AppendBytes(b, put.Frame)
	b = append(b, put.BaseDigest[:]...)
	b = append(b, put.NewDigest[:]...)
	b = transport.AppendString(b, put.Concern)
	return b
}

// readSnapPut decodes one put body in appendSnapPut's layout. Frame is
// copied out of the wire buffer: the center retains puts past the
// handler's life.
func readSnapPut(r *transport.FastReader) state.SnapshotPut {
	var put state.SnapshotPut
	put.App = r.String()
	put.Host = r.String()
	put.Space = r.String()
	put.At = r.Time()
	put.Delta = r.Bool()
	put.Frame = append([]byte(nil), r.Bytes()...)
	copy(put.BaseDigest[:], r.Fixed(sha256.Size))
	copy(put.NewDigest[:], r.Fixed(sha256.Size))
	put.Concern = r.String()
	return put
}

// snapOutcome is one put's result inside a batch reply.
type snapOutcome struct {
	Stamp      state.SnapshotStamp
	NeedFull   bool
	NotDurable bool
	Err        string // non-flag failure, per entry
}

func appendSnapOutcome(b []byte, o snapOutcome) []byte {
	var flags byte
	if o.NeedFull {
		flags |= snapFlagNeedFull
	}
	if o.NotDurable {
		flags |= snapFlagNotDurable
	}
	if o.Err != "" {
		flags |= snapFlagErr
	}
	b = append(b, flags)
	b = transport.AppendUint(b, o.Stamp.Seq)
	b = transport.AppendUint(b, o.Stamp.BaseSeq)
	b = transport.AppendUint(b, uint64(o.Stamp.Chain))
	if o.Err != "" {
		b = transport.AppendString(b, o.Err)
	}
	return b
}

func readSnapOutcome(r *transport.FastReader) snapOutcome {
	var o snapOutcome
	flags := byte(0)
	if f := r.Fixed(1); len(f) == 1 {
		flags = f[0]
	}
	o.NeedFull = flags&snapFlagNeedFull != 0
	o.NotDurable = flags&snapFlagNotDurable != 0
	o.Stamp.Seq = r.Uint()
	o.Stamp.BaseSeq = r.Uint()
	o.Stamp.Chain = int(r.Uint())
	if flags&snapFlagErr != 0 {
		o.Err = r.String()
	}
	return o
}

// encodeSnapPutFast seals one put as an OpSnapPut frame.
func encodeSnapPutFast(put state.SnapshotPut) []byte {
	return transport.SealFast(transport.OpSnapPut, appendSnapPut(make([]byte, 0, 128+len(put.Frame)), put))
}

// encodeSnapPutBatchFast seals a batch as an OpSnapPutBatch frame.
func encodeSnapPutBatchFast(puts []state.SnapshotPut) []byte {
	size := 16
	for i := range puts {
		size += 128 + len(puts[i].Frame)
	}
	b := transport.AppendUint(make([]byte, 0, size), uint64(len(puts)))
	for i := range puts {
		b = appendSnapPut(b, puts[i])
	}
	return transport.SealFast(transport.OpSnapPutBatch, b)
}

// decodeSnapOutcomeReply parses an OpSnapPutReply frame.
func decodeSnapOutcomeReply(payload []byte) (snapOutcome, error) {
	op, body, err := transport.OpenFast(payload)
	if err != nil {
		return snapOutcome{}, err
	}
	if op != transport.OpSnapPutReply {
		return snapOutcome{}, fmt.Errorf("cluster: unexpected fast reply opcode %#x", op)
	}
	r := transport.NewFastReader(body)
	o := readSnapOutcome(r)
	return o, r.Err()
}

// decodeSnapBatchReply parses an OpSnapPutBatchReply frame into exactly
// want outcomes — a count mismatch is a protocol error, not a partial
// result.
func decodeSnapBatchReply(payload []byte, want int) ([]snapOutcome, error) {
	op, body, err := transport.OpenFast(payload)
	if err != nil {
		return nil, err
	}
	if op != transport.OpSnapPutBatchReply {
		return nil, fmt.Errorf("cluster: unexpected fast reply opcode %#x", op)
	}
	r := transport.NewFastReader(body)
	count := r.Uint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if count != uint64(want) {
		return nil, fmt.Errorf("cluster: batch reply has %d outcomes, sent %d puts", count, want)
	}
	out := make([]snapOutcome, 0, want)
	for i := 0; i < want && r.Err() == nil; i++ {
		out = append(out, readSnapOutcome(r))
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// outcomeOf maps a center-side put result into the in-band wire form,
// mirroring the gob handler: need-full and not-durable are expected
// signals, anything else is a per-entry error string.
func outcomeOf(stamp state.SnapshotStamp, err error) snapOutcome {
	o := snapOutcome{Stamp: stamp}
	switch {
	case err == nil:
	case errors.Is(err, state.ErrNeedFull):
		o.Stamp = state.SnapshotStamp{}
		o.NeedFull = true
	case errors.Is(err, ErrNotDurable):
		o.NotDurable = true
	default:
		o.Stamp = state.SnapshotStamp{}
		o.Err = err.Error()
	}
	return o
}

// maxSnapBatch bounds one batch frame's put count — a sanity limit far
// above what the replicator or bench ever sends, guarding the decoder
// against a torn count prefix.
const maxSnapBatch = 4096

// putSnapshotFast serves a v2 MsgPutSnapshot frame (single or batch) on
// the center. Single puts keep the gob path's contract — expected
// signals (need-full, not-durable) ride in-band, hard failures become
// error replies. Batch entries carry even hard failures in-band so one
// bad put cannot void its batchmates' stamps.
func (c *Center) putSnapshotFast(payload []byte) ([]byte, error) {
	op, body, err := transport.OpenFast(payload)
	if err != nil {
		return nil, err
	}
	switch op {
	case transport.OpSnapPut:
		r := transport.NewFastReader(body)
		put := readSnapPut(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		stamp, perr := c.PutSnapshot(context.Background(), put)
		o := outcomeOf(stamp, perr)
		if o.Err != "" {
			return nil, perr
		}
		return transport.SealFast(transport.OpSnapPutReply, appendSnapOutcome(nil, o)), nil
	case transport.OpSnapPutBatch:
		r := transport.NewFastReader(body)
		count := r.Uint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if count == 0 || count > maxSnapBatch {
			return nil, fmt.Errorf("cluster: batch put count %d out of range", count)
		}
		b := transport.AppendUint(make([]byte, 0, 8+int(count)*16), count)
		for i := uint64(0); i < count; i++ {
			put := readSnapPut(r)
			if err := r.Err(); err != nil {
				return nil, err
			}
			stamp, perr := c.PutSnapshot(context.Background(), put)
			b = appendSnapOutcome(b, outcomeOf(stamp, perr))
		}
		return transport.SealFast(transport.OpSnapPutBatchReply, b), nil
	default:
		return nil, fmt.Errorf("cluster: unknown fast opcode %#x on %s", op, MsgPutSnapshot)
	}
}

// err maps a decoded outcome back to the Publisher error contract (the
// inverse of outcomeOf, client side). The Err string rides a
// RemoteError so registered sentinels keep matching through errors.Is.
func (o snapOutcome) err(app string) error {
	switch {
	case o.Err != "":
		return &transport.RemoteError{Msg: o.Err}
	case o.NeedFull:
		return state.ErrNeedFull
	case o.NotDurable:
		return fmt.Errorf("cluster: remote put %s: %w", app, ErrNotDurable)
	}
	return nil
}
