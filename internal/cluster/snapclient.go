package cluster

import (
	"context"
	"fmt"

	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// SnapshotClient is a remote state.Publisher: it speaks the snapshot
// wire protocol a federated center binds in Serve, so a multi-process
// daemon's replicator streams its application state to the center
// exactly as an in-process deployment does — delta puts, need-full
// fallback, tombstones, and restore-side fetches all cross the wire.
type SnapshotClient struct {
	ep      *transport.Endpoint
	server  string
	concern string // write-concern header stamped on every put ("" = center default)
}

var _ state.Publisher = (*SnapshotClient)(nil)

// NewSnapshotClient creates a client that publishes to the center served
// at server through ep.
func NewSnapshotClient(ep *transport.Endpoint, server string) *SnapshotClient {
	return &SnapshotClient{ep: ep, server: server}
}

// SetWriteConcern makes every put carry wc as its write-concern header,
// overriding the center's configured default per put (mdagentd's
// -write-concern flag). The zero value defers to the center.
func (c *SnapshotClient) SetWriteConcern(wc WriteConcern) {
	c.concern = string(wc)
}

// PutSnapshot implements state.Publisher. A center that cannot apply a
// delta put answers in-band; the client maps that back to
// state.ErrNeedFull so the replicator's fallback works unchanged, and a
// durability shortfall maps to state.ErrNotDurable so the replicator
// re-queues instead of advancing its acked base.
func (c *SnapshotClient) PutSnapshot(ctx context.Context, put state.SnapshotPut) (state.SnapshotStamp, error) {
	if put.Concern == "" {
		put.Concern = c.concern
	}
	payload, err := transport.EncodeSealed(put)
	if err != nil {
		return state.SnapshotStamp{}, err
	}
	var reply putSnapshotReply
	if err := c.ep.RequestDecode(ctx, c.server, MsgPutSnapshot, payload, &reply); err != nil {
		return state.SnapshotStamp{}, err
	}
	if reply.NeedFull {
		return state.SnapshotStamp{}, state.ErrNeedFull
	}
	if reply.NotDurable {
		return reply.Stamp, fmt.Errorf("cluster: remote put %s: %w", put.App, ErrNotDurable)
	}
	return reply.Stamp, nil
}

// DropSnapshot implements state.Publisher.
func (c *SnapshotClient) DropSnapshot(ctx context.Context, appName, host string) error {
	payload, err := transport.EncodeSealed(dropSnapshotReq{App: appName, Host: host})
	if err != nil {
		return err
	}
	_, err = c.ep.Request(ctx, c.server, MsgDropSnapshot, payload)
	return err
}

// LatestSnapshot fetches the center's freshest replicated record for an
// application — the restore side of the wire protocol.
func (c *SnapshotClient) LatestSnapshot(ctx context.Context, appName string) (state.SnapshotRecord, bool, error) {
	payload, err := transport.EncodeSealed(getSnapshotReq{App: appName})
	if err != nil {
		return state.SnapshotRecord{}, false, err
	}
	var reply getSnapshotReply
	if err := c.ep.RequestDecode(ctx, c.server, MsgGetSnapshot, payload, &reply); err != nil {
		return state.SnapshotRecord{}, false, err
	}
	return reply.Rec, reply.Found, nil
}

// SnapshotHeads lists the metadata of every live replicated snapshot the
// center holds — the control plane's remote snapshot view.
func (c *SnapshotClient) SnapshotHeads(ctx context.Context) ([]state.SnapshotHead, error) {
	payload, err := transport.EncodeSealed(struct{}{})
	if err != nil {
		return nil, err
	}
	var reply listSnapsReply
	if err := c.ep.RequestDecode(ctx, c.server, MsgListSnaps, payload, &reply); err != nil {
		return nil, err
	}
	return reply.Heads, nil
}
