package cluster

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// SnapshotClient is a remote state.Publisher: it speaks the snapshot
// wire protocol a federated center binds in Serve, so a multi-process
// daemon's replicator streams its application state to the center
// exactly as an in-process deployment does — delta puts, need-full
// fallback, tombstones, and restore-side fetches all cross the wire.
type SnapshotClient struct {
	ep      *transport.Endpoint
	server  string
	concern string // write-concern header stamped on every put ("" = center default)

	// proto is the negotiated put encoding: 0 = untried (optimistically
	// fast), transport.ProtoV2 = fast confirmed, transport.ProtoVersion
	// = gob (the peer refused a v2 frame once; the downgrade sticks for
	// the client's life — centers don't upgrade mid-run).
	proto atomic.Uint32

	mu    sync.Mutex
	cache map[string]state.SnapshotRecord // last record fetched per app, the base delta-aware pulls extend
	stats SnapshotFetchStats
}

// SnapshotFetchStats counts how a client's restore fetches were served —
// the observable a delta-aware failover pull is judged by.
type SnapshotFetchStats struct {
	Full      int // full-record responses
	DeltaOnly int // tail-only responses grafted onto the cached record
	Refetches int // grafts that failed and forced a second, full fetch
}

var _ state.Publisher = (*SnapshotClient)(nil)

// NewSnapshotClient creates a client that publishes to the center served
// at server through ep.
func NewSnapshotClient(ep *transport.Endpoint, server string) *SnapshotClient {
	return &SnapshotClient{ep: ep, server: server, cache: map[string]state.SnapshotRecord{}}
}

// SetWriteConcern makes every put carry wc as its write-concern header,
// overriding the center's configured default per put (mdagentd's
// -write-concern flag). The zero value defers to the center.
func (c *SnapshotClient) SetWriteConcern(wc WriteConcern) {
	c.concern = string(wc)
}

// SetProto pins the put encoding instead of negotiating:
// transport.ProtoVersion forces gob (how a pre-v2 client behaves),
// transport.ProtoV2 demands the fast path. The protocol-diff benchmarks
// and the compat tests use it; production clients negotiate.
func (c *SnapshotClient) SetProto(p byte) { c.proto.Store(uint32(p)) }

// Proto reports the negotiated put encoding (0 until the first put).
func (c *SnapshotClient) Proto() byte { return byte(c.proto.Load()) }

// useFast reports whether puts should try the v2 encoding.
func (c *SnapshotClient) useFast() bool {
	return c.proto.Load() != uint32(transport.ProtoVersion)
}

// downgrade handles a fast put's failure: a version refusal from a
// pre-v2 center makes the gob fallback sticky and reports retryable.
func (c *SnapshotClient) downgrade(err error) bool {
	if errors.Is(err, transport.ErrVersion) {
		c.proto.Store(uint32(transport.ProtoVersion))
		return true
	}
	return false
}

// PutSnapshot implements state.Publisher. A center that cannot apply a
// delta put answers in-band; the client maps that back to
// state.ErrNeedFull so the replicator's fallback works unchanged, and a
// durability shortfall maps to state.ErrNotDurable so the replicator
// re-queues instead of advancing its acked base.
//
// Encoding is negotiated optimistically: the first put goes out as a
// compact v2 fast frame; a center that refuses the version (typed
// ErrVersion reply) gets the same put re-sent as gob, and the client
// sticks to gob from then on.
func (c *SnapshotClient) PutSnapshot(ctx context.Context, put state.SnapshotPut) (state.SnapshotStamp, error) {
	if put.Concern == "" {
		put.Concern = c.concern
	}
	if c.useFast() {
		stamp, err := c.putFast(ctx, put)
		if err == nil || !c.downgrade(err) {
			return stamp, err
		}
		// Version refused: fall through to gob, stick to it.
	}
	payload, err := transport.EncodeSealed(put)
	if err != nil {
		return state.SnapshotStamp{}, err
	}
	var reply putSnapshotReply
	if err := c.ep.RequestDecode(ctx, c.server, MsgPutSnapshot, payload, &reply); err != nil {
		return state.SnapshotStamp{}, err
	}
	if reply.NeedFull {
		return state.SnapshotStamp{}, state.ErrNeedFull
	}
	if reply.NotDurable {
		return reply.Stamp, fmt.Errorf("cluster: remote put %s: %w", put.App, ErrNotDurable)
	}
	return reply.Stamp, nil
}

// putFast runs one v2 put round trip.
func (c *SnapshotClient) putFast(ctx context.Context, put state.SnapshotPut) (state.SnapshotStamp, error) {
	reply, err := c.ep.Request(ctx, c.server, MsgPutSnapshot, encodeSnapPutFast(put))
	if err != nil {
		return state.SnapshotStamp{}, err
	}
	o, err := decodeSnapOutcomeReply(reply.Payload)
	if err != nil {
		return state.SnapshotStamp{}, err
	}
	c.proto.Store(uint32(transport.ProtoV2)) // confirmed
	return o.Stamp, o.err(put.App)
}

// PutSnapshotBatch publishes several puts in one round trip with
// per-put outcomes: outcome i carries put i's stamp or its error
// (state.ErrNeedFull / ErrNotDurable survive in-band exactly as on the
// single-put path), so one refused delta cannot fail its batchmates.
// Against a pre-v2 center the batch degrades to sequential single puts
// — same results, one round trip per put.
func (c *SnapshotClient) PutSnapshotBatch(ctx context.Context, puts []state.SnapshotPut) ([]SnapshotOutcome, error) {
	if len(puts) == 0 {
		return nil, nil
	}
	stamped := make([]state.SnapshotPut, len(puts))
	for i, put := range puts {
		if put.Concern == "" {
			put.Concern = c.concern
		}
		stamped[i] = put
	}
	if c.useFast() {
		reply, err := c.ep.Request(ctx, c.server, MsgPutSnapshot, encodeSnapPutBatchFast(stamped))
		if err == nil {
			outcomes, derr := decodeSnapBatchReply(reply.Payload, len(stamped))
			if derr != nil {
				return nil, derr
			}
			c.proto.Store(uint32(transport.ProtoV2))
			out := make([]SnapshotOutcome, len(outcomes))
			for i, o := range outcomes {
				out[i] = SnapshotOutcome{Stamp: o.Stamp, Err: o.err(stamped[i].App)}
			}
			return out, nil
		}
		if !c.downgrade(err) {
			return nil, err
		}
	}
	// Gob peers have no batch op: sequential singles, same outcomes.
	out := make([]SnapshotOutcome, len(stamped))
	for i, put := range stamped {
		stamp, err := c.PutSnapshot(ctx, put)
		out[i] = SnapshotOutcome{Stamp: stamp, Err: err}
	}
	return out, nil
}

// SnapshotOutcome is one put's result from PutSnapshotBatch.
type SnapshotOutcome struct {
	Stamp state.SnapshotStamp
	Err   error
}

// DropSnapshot implements state.Publisher.
func (c *SnapshotClient) DropSnapshot(ctx context.Context, appName, host string) error {
	payload, err := transport.EncodeSealed(dropSnapshotReq{App: appName, Host: host})
	if err != nil {
		return err
	}
	_, err = c.ep.Request(ctx, c.server, MsgDropSnapshot, payload)
	return err
}

// LatestSnapshot fetches the center's freshest replicated record for an
// application — the restore side of the wire protocol. The fetch is
// delta-aware: when the client already fetched a record of the app, the
// request describes it (base sequence, head sequence, head digest) and
// a center whose copy extends the same base answers with just the
// missing delta tail, which the client grafts onto its cached record. A
// graft that does not line up — eviction raced a rewrite, compaction
// moved the base — drops the cache and pays for one full fetch, so the
// optimization can degrade but never corrupt a restore.
func (c *SnapshotClient) LatestSnapshot(ctx context.Context, appName string) (state.SnapshotRecord, bool, error) {
	c.mu.Lock()
	cached, have := c.cache[appName]
	c.mu.Unlock()

	req := getSnapshotReq{App: appName}
	if have {
		req.Have = true
		req.HaveBaseSeq = cached.BaseSeq
		req.HaveSeq = cached.Seq
		req.HaveDigest = cached.StateDigest
	}
	reply, err := c.fetch(ctx, req)
	if err != nil {
		return state.SnapshotRecord{}, false, err
	}
	rec := reply.Rec
	if reply.Found && reply.DeltaOnly {
		merged, ok := graftTail(cached, reply.Rec)
		if !ok {
			c.mu.Lock()
			delete(c.cache, appName)
			c.stats.Refetches++
			c.mu.Unlock()
			if reply, err = c.fetch(ctx, getSnapshotReq{App: appName}); err != nil {
				return state.SnapshotRecord{}, false, err
			}
			rec = reply.Rec
		} else {
			rec = merged
		}
	}
	c.mu.Lock()
	if reply.Found {
		c.cache[appName] = rec
		if reply.DeltaOnly {
			c.stats.DeltaOnly++
		} else {
			c.stats.Full++
		}
	} else {
		delete(c.cache, appName)
	}
	c.mu.Unlock()
	return rec, reply.Found, nil
}

// fetch runs one MsgGetSnapshot round trip.
func (c *SnapshotClient) fetch(ctx context.Context, req getSnapshotReq) (getSnapshotReply, error) {
	payload, err := transport.EncodeSealed(req)
	if err != nil {
		return getSnapshotReply{}, err
	}
	var reply getSnapshotReply
	if err := c.ep.RequestDecode(ctx, c.server, MsgGetSnapshot, payload, &reply); err != nil {
		return getSnapshotReply{}, err
	}
	return reply, nil
}

// FetchStats reports how this client's restore fetches were served.
func (c *SnapshotClient) FetchStats() SnapshotFetchStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// graftTail splices a tail-only reply onto the cached record it extends
// and validates the result, refusing any shape the center's digest
// checks should have made impossible.
func graftTail(cached, tail state.SnapshotRecord) (state.SnapshotRecord, bool) {
	if tail.BaseSeq != cached.BaseSeq || tail.Seq < cached.Seq {
		return state.SnapshotRecord{}, false
	}
	merged := tail
	merged.Frame = cached.Frame
	merged.Deltas = append(slices.Clone(cached.Deltas), tail.Deltas...)
	if uint64(len(merged.Deltas)) != merged.Seq-merged.BaseSeq {
		return state.SnapshotRecord{}, false
	}
	if err := merged.Verify(); err != nil {
		return state.SnapshotRecord{}, false
	}
	return merged, true
}

// SnapshotHeads lists the metadata of every live replicated snapshot the
// center holds — the control plane's remote snapshot view.
func (c *SnapshotClient) SnapshotHeads(ctx context.Context) ([]state.SnapshotHead, error) {
	payload, err := transport.EncodeSealed(struct{}{})
	if err != nil {
		return nil, err
	}
	var reply listSnapsReply
	if err := c.ep.RequestDecode(ctx, c.server, MsgListSnaps, payload, &reply); err != nil {
		return nil, err
	}
	return reply.Heads, nil
}
