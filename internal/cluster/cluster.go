// Package cluster is MDAgent's distribution layer: SWIM-style gossip
// membership with suspect->dead failure detection (Node), a federated
// registry replicating app/resource/device records across smart-space
// centers with per-record version vectors (Center), and failover
// re-homing of a dead host's applications onto the best survivor
// (Failover).
//
// The paper's testbed (§5) hangs every host off one Juddi+MySQL registry
// center — a single point of failure. Here each smart space runs its own
// center; centers reconcile by push + anti-entropy digests so rebinding
// queries resolve against the union of spaces, and hosts gossip liveness
// so the environment survives churn instead of assuming the 2002 testbed
// never crashes. Everything runs over internal/transport endpoints, so
// the same code paths work in-process (where internal/netsim injects
// host-down and partition faults) and over TCP (cmd/mdagentd,
// cmd/mdregistry).
package cluster

import (
	"sort"
	"sync"

	"mdagent/internal/migrate"
	"mdagent/internal/registry"
	"mdagent/internal/transport"
)

// A Center doubles as the registry view migration engines plan against.
var _ migrate.Catalog = (*Center)(nil)

// Cluster assembles one deployment's membership nodes and federated
// centers: centers are fully meshed as they are added, nodes join the
// existing membership, and Start/Stop manage every component's loops.
// internal/core owns one Cluster per Middleware when Config.Cluster is
// set.
type Cluster struct {
	cfg Config

	mu        sync.Mutex
	centers   map[string]*Center
	nodes     map[string]*Node
	listeners []func(*Node, Member)
	started   bool
}

// New creates an empty cluster assembly.
func New(cfg Config) *Cluster {
	return &Cluster{
		cfg:     cfg.withDefaults(),
		centers: make(map[string]*Center),
		nodes:   make(map[string]*Node),
	}
}

// Config returns the effective (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// AddCenter creates the federated registry center for a space on ep and
// meshes it with every existing center. Adding a space twice returns the
// existing center.
func (c *Cluster) AddCenter(space string, reg *registry.Registry, ep *transport.Endpoint) *Center {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok := c.centers[space]; ok {
		return ctr
	}
	ctr := NewCenter(space, reg, ep, c.cfg)
	for peerSpace, peer := range c.centers {
		ctr.AddPeer(peerSpace, peer.ep.Name())
		peer.AddPeer(space, ep.Name())
	}
	c.centers[space] = ctr
	if c.started {
		ctr.Start()
	}
	return ctr
}

// Center returns a space's center.
func (c *Cluster) Center(space string) (*Center, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr, ok := c.centers[space]
	return ctr, ok
}

// Spaces lists federated spaces, sorted.
func (c *Cluster) Spaces() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.centers))
	for s := range c.centers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// AddNode creates the membership node for a host on ep and joins it to
// the existing membership (each side seeds the other).
func (c *Cluster) AddNode(host, space string, ep *transport.Endpoint) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[host]; ok {
		return n
	}
	n := NewNode(Member{ID: host, Space: space, Endpoint: ep.Name()}, ep, c.cfg)
	for _, f := range c.listeners {
		n.OnChange(f)
	}
	for _, peer := range c.nodes {
		n.Join(peer.Self())
		peer.Join(n.Self())
	}
	c.nodes[host] = n
	if c.started {
		n.Start()
	}
	return n
}

// Node returns a host's membership node.
func (c *Cluster) Node(host string) (*Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[host]
	return n, ok
}

// OnMemberChange registers a membership listener on every node, current
// and future.
func (c *Cluster) OnMemberChange(f func(*Node, Member)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, f)
	for _, n := range c.nodes {
		n.OnChange(f)
	}
}

// Start launches every node's probe loop and every center's anti-entropy
// loop; components added later start automatically.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	for _, n := range c.nodes {
		n.Start()
	}
	for _, ctr := range c.centers {
		ctr.Start()
	}
}

// Stop halts every loop (idempotent).
func (c *Cluster) Stop() {
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	centers := make([]*Center, 0, len(c.centers))
	for _, ctr := range c.centers {
		centers = append(centers, ctr)
	}
	c.started = false
	c.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	for _, ctr := range centers {
		ctr.Stop()
	}
}
