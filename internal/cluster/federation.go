package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mdagent/internal/owl"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// Center is one smart space's registry center, federated with its peers:
// every app, resource, and device record written here is stamped with a
// per-record version vector (vclock.Version), pushed to peer centers
// best-effort, and reconciled by periodic anti-entropy digests. Reads see
// the union of all spaces once replication converges, so OWL rebinding
// queries resolve against every space's inventory. Center satisfies
// migrate.Catalog, so engines use it exactly like a single registry.
type Center struct {
	space string
	reg   *registry.Registry
	ep    *transport.Endpoint
	cfg   Config

	mu      sync.Mutex
	records map[string]Record
	peers   map[string]string // peer space -> endpoint name
	rng     *rand.Rand

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// fedKeyPrefix prefixes the store keys the center persists its
// replication state (records + version vectors) under.
const fedKeyPrefix = "fed/"

// NewCenter creates the center for space over local registry reg, serving
// federation messages on ep. Replication state is persisted to the
// registry's store, so a center backed by a durable store resumes its
// version history after a restart instead of re-issuing counters its
// peers have already seen (which they would reject as stale). Call Start
// to begin anti-entropy; pushes and digest answers work as soon as it is
// created.
func NewCenter(space string, reg *registry.Registry, ep *transport.Endpoint, cfg Config) *Center {
	cfg = cfg.withDefaults()
	c := &Center{
		space:   space,
		reg:     reg,
		ep:      ep,
		cfg:     cfg,
		records: make(map[string]Record),
		peers:   make(map[string]string),
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(len(space)))),
		stop:    make(chan struct{}),
	}
	db := reg.Store()
	for _, key := range db.Keys(fedKeyPrefix) {
		raw, err := db.Get(key)
		if err != nil {
			continue // raced with delete
		}
		var r Record
		if err := transport.Decode(raw, &r); err != nil {
			continue // corrupt frame; the peer re-offers it via anti-entropy
		}
		c.records[r.Key] = r
	}
	ep.Handle(MsgFedDigest, c.handleDigest)
	ep.Handle(MsgFedPush, c.handlePush)
	return c
}

// Space returns the smart space this center serves.
func (c *Center) Space() string { return c.space }

// Registry exposes the center's local registry — after convergence it
// holds the union of every federated space's records.
func (c *Center) Registry() *registry.Registry { return c.reg }

// AddPeer federates with another space's center at the given endpoint.
func (c *Center) AddPeer(space, endpoint string) {
	c.mu.Lock()
	c.peers[space] = endpoint
	c.mu.Unlock()
}

// Start launches the anti-entropy loop.
func (c *Center) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.SyncInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.syncOnce()
			}
		}
	}()
}

// Stop halts anti-entropy. The center answers peers until its endpoint
// closes.
func (c *Center) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// --- Write API (each write stamps a version and replicates). ---

// RegisterApp registers an application installation, stamping a version
// and replicating to peers. An empty Space defaults to this center's.
func (c *Center) RegisterApp(_ context.Context, rec registry.AppRecord) error {
	if rec.Space == "" {
		rec.Space = c.space
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	return c.write(Record{Key: rec.Key(), Kind: RecordApp, App: rec})
}

// UnregisterApp tombstones an application installation across the
// federation.
func (c *Center) UnregisterApp(_ context.Context, name, host string) error {
	rec := registry.AppRecord{Name: name, Host: host}
	return c.write(Record{Key: rec.Key(), Kind: RecordApp, App: rec, Deleted: true})
}

// snapKey is the replication-table key for an app's latest snapshot.
// Keyed by application (not host): failover wants the freshest state
// wherever it was captured, and a migrating app's new host simply
// supersedes the old one's record.
func snapKey(appName string) string { return "snap/" + appName }

// A Center is the state pipeline's publisher.
var _ state.Publisher = (*Center)(nil)

// PutSnapshot stores an application's latest state snapshot and
// replicates it federation-wide. The center assigns the record's capture
// sequence (previous + 1 under the write lock), so concurrent snapshots
// from different spaces resolve to the longest capture history.
func (c *Center) PutSnapshot(_ context.Context, sr state.SnapshotRecord) (state.SnapshotRecord, error) {
	if sr.App == "" {
		return sr, fmt.Errorf("cluster: snapshot record has no app")
	}
	if sr.Space == "" {
		sr.Space = c.space
	}
	rec, err := c.writeStamped(Record{Key: snapKey(sr.App), Kind: RecordSnapshot, Snap: sr})
	return rec.Snap, err
}

// DropSnapshot tombstones an application's replicated snapshot — the
// graceful-stop path, so failover never restores state for an app an
// operator deliberately stopped.
func (c *Center) DropSnapshot(_ context.Context, appName, host string) error {
	return c.write(Record{
		Key: snapKey(appName), Kind: RecordSnapshot,
		Snap: state.SnapshotRecord{App: appName, Host: host}, Deleted: true,
	})
}

// LatestSnapshot returns the freshest replicated snapshot this center
// knows for an application (false when none, or when it was tombstoned).
func (c *Center) LatestSnapshot(appName string) (state.SnapshotRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.records[snapKey(appName)]
	if !ok || r.Deleted || r.Kind != RecordSnapshot {
		return state.SnapshotRecord{}, false
	}
	return r.Snap, true
}

// RegisterResource registers a resource description federation-wide.
func (c *Center) RegisterResource(_ context.Context, res owl.Resource) error {
	if err := res.Validate(); err != nil {
		return err
	}
	return c.write(Record{Key: "res/" + res.ID, Kind: RecordResource, Res: res})
}

// RegisterDevice registers a host device profile federation-wide.
func (c *Center) RegisterDevice(_ context.Context, dev wsdl.DeviceProfile) error {
	if dev.Host == "" {
		return fmt.Errorf("cluster: device profile has no host")
	}
	return c.write(Record{Key: "dev/" + dev.Host, Kind: RecordDevice, Dev: dev})
}

// write stamps a locally originated record and replicates it.
func (c *Center) write(r Record) error {
	_, err := c.writeStamped(r)
	return err
}

// writeStamped stamps a locally originated record, replicates it, and
// returns it as stamped. Stamping, installing, and mirroring into the
// registry happen under one critical section: two racing writers must
// produce two *ordered* versions (the second ticks on top of the first),
// never two identical vectors that peers could receive in different
// orders and diverge on. Snapshot records additionally get the next
// capture sequence under the same section.
func (c *Center) writeStamped(r Record) (Record, error) {
	c.mu.Lock()
	prev := c.records[r.Key]
	r.Version = prev.Version.Tick(c.space)
	r.Origin = c.space
	if r.Kind == RecordSnapshot {
		r.Snap.Seq = prev.Snap.Seq + 1
	}
	c.records[r.Key] = r
	c.persist(r)
	err := c.applyToRegistry(r)
	c.mu.Unlock()
	if err != nil {
		return r, err
	}
	c.pushAsync([]Record{r})
	return r, nil
}

// persist writes a record's replication state through to the registry's
// store (a no-op cost for memory-backed stores); callers hold c.mu.
func (c *Center) persist(r Record) {
	if raw, err := transport.Encode(r); err == nil {
		_ = c.reg.Store().Put(fedKeyPrefix+r.Key, raw)
	}
}

// apply installs a remotely received record if its version wins,
// mirroring it into the local registry. Concurrent versions resolve
// deterministically (higher origin space wins) with the merged vector,
// so every center converges to the same state regardless of delivery
// order. The registry mirror happens under c.mu so two winning applies
// cannot land in the registry out of version order.
func (c *Center) apply(r Record) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ex, known := c.records[r.Key]
	if known {
		switch r.Version.Compare(ex.Version) {
		case vclock.Before, vclock.Equal:
			return false, nil
		case vclock.Concurrent:
			merged := r.Version.Merge(ex.Version)
			if !concurrentWins(r, ex) {
				ex.Version = merged
				c.records[r.Key] = ex
				c.persist(ex)
				return false, nil
			}
			r.Version = merged
		}
	}
	c.records[r.Key] = r
	c.persist(r)
	return true, c.applyToRegistry(r)
}

// concurrentWins resolves a concurrent-version conflict deterministically
// — every center must pick the same winner regardless of delivery order,
// so only record-payload fields may be consulted. Snapshot records prefer
// the longer capture history (higher sequence), then a graceful-stop
// tombstone (a deliberate stop must not be undone by a concurrent capture
// whose At would beat the tombstone's zero time), then the later capture
// time; everything else, and residual ties, fall to the higher origin
// space.
func concurrentWins(r, ex Record) bool {
	if r.Kind == RecordSnapshot && ex.Kind == RecordSnapshot {
		if r.Snap.Seq != ex.Snap.Seq {
			return r.Snap.Seq > ex.Snap.Seq
		}
		if r.Deleted != ex.Deleted {
			return r.Deleted
		}
		if !r.Snap.At.Equal(ex.Snap.At) {
			return r.Snap.At.After(ex.Snap.At)
		}
	}
	return r.Origin >= ex.Origin
}

// applyToRegistry mirrors a winning record into the local registry.
func (c *Center) applyToRegistry(r Record) error {
	switch r.Kind {
	case RecordApp:
		if r.Deleted {
			return c.reg.UnregisterApp(r.App.Name, r.App.Host)
		}
		return c.reg.RegisterApp(r.App)
	case RecordResource:
		if r.Deleted {
			return nil // resource tombstones only stop replication
		}
		return c.reg.RegisterResource(r.Res)
	case RecordDevice:
		if r.Deleted {
			return nil
		}
		return c.reg.RegisterDevice(r.Dev)
	case RecordSnapshot:
		// Snapshots live only in the replication table (and its persisted
		// mirror); the registry proper never sees them.
		return nil
	}
	return fmt.Errorf("cluster: unknown record kind %d", r.Kind)
}

// --- Read API (local registry = converged union; Catalog shape). ---

// LookupApp reads one installation record from the replicated view.
func (c *Center) LookupApp(_ context.Context, name, host string) (registry.AppRecord, bool, error) {
	return c.reg.LookupApp(name, host)
}

// Device reads a host device profile from the replicated view.
func (c *Center) Device(_ context.Context, host string) (wsdl.DeviceProfile, bool, error) {
	dev, ok := c.reg.Device(host)
	return dev, ok, nil
}

// PlanRebinding answers a rebinding plan against the replicated union of
// every space's resources.
func (c *Center) PlanRebinding(_ context.Context, src owl.Resource, destHost string, mode owl.MatchMode) (owl.Rebinding, error) {
	return c.reg.PlanRebinding(src, destHost, mode)
}

// Serve binds the standard registry wire protocol onto ep with the write
// operations routed through the center (versioned + replicated) instead
// of straight into the local store — remote daemons talk to a federated
// center exactly as they would to a standalone registry, but their
// registrations propagate to every space. Reads keep the plain registry
// handlers (the local store holds the converged union).
func (c *Center) Serve(ep *transport.Endpoint) *Center {
	c.reg.Serve(ep) // read handlers + fallback writes...
	// ...then shadow the write handlers with replicating versions.
	ep.Handle(registry.MsgRegisterApp, func(msg transport.Message) ([]byte, error) {
		var rec registry.AppRecord
		if err := transport.Decode(msg.Payload, &rec); err != nil {
			return nil, err
		}
		return nil, c.RegisterApp(context.Background(), rec)
	})
	ep.Handle(registry.MsgUnregisterApp, func(msg transport.Message) ([]byte, error) {
		var req struct{ Name, Host string }
		if err := transport.Decode(msg.Payload, &req); err != nil {
			return nil, err
		}
		return nil, c.UnregisterApp(context.Background(), req.Name, req.Host)
	})
	ep.Handle(registry.MsgRegisterResource, func(msg transport.Message) ([]byte, error) {
		var res owl.Resource
		if err := transport.Decode(msg.Payload, &res); err != nil {
			return nil, err
		}
		return nil, c.RegisterResource(context.Background(), res)
	})
	ep.Handle(registry.MsgRegisterDevice, func(msg transport.Message) ([]byte, error) {
		var dev wsdl.DeviceProfile
		if err := transport.Decode(msg.Payload, &dev); err != nil {
			return nil, err
		}
		return nil, c.RegisterDevice(context.Background(), dev)
	})
	return c
}

// --- Replication plumbing. ---

// digest snapshots key -> version for anti-entropy.
func (c *Center) digest() map[string]vclock.Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := make(map[string]vclock.Version, len(c.records))
	for k, r := range c.records {
		d[k] = r.Version.Clone()
	}
	return d
}

// missingFor collects the records the given digest has not seen (unknown
// keys, or versions ours is not dominated by).
func (c *Center) missingFor(d map[string]vclock.Version) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Record
	for k, r := range c.records {
		theirs, ok := d[k]
		if !ok || !theirs.Dominates(r.Version) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// syncOnce pulls from one random peer.
func (c *Center) syncOnce() {
	c.mu.Lock()
	var spaces []string
	for s := range c.peers {
		spaces = append(spaces, s)
	}
	if len(spaces) == 0 {
		c.mu.Unlock()
		return
	}
	sort.Strings(spaces)
	peer := c.peers[spaces[c.rng.Intn(len(spaces))]]
	c.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	_ = c.pullFrom(ctx, peer)
}

// SyncNow performs one synchronous digest exchange with every peer —
// tests and benches use it to force convergence without waiting out the
// anti-entropy timer.
func (c *Center) SyncNow(ctx context.Context) error {
	c.mu.Lock()
	eps := make([]string, 0, len(c.peers))
	for _, ep := range c.peers {
		eps = append(eps, ep)
	}
	c.mu.Unlock()
	sort.Strings(eps)
	var firstErr error
	for _, ep := range eps {
		if err := c.pullFrom(ctx, ep); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// pullFrom sends our digest to a peer and applies whatever it returns.
func (c *Center) pullFrom(ctx context.Context, endpoint string) error {
	var reply digestReply
	err := c.ep.RequestDecode(ctx, endpoint, MsgFedDigest,
		transport.MustEncode(digestMsg{From: c.space, Digest: c.digest()}), &reply)
	if err != nil {
		return err
	}
	for _, r := range reply.Records {
		if _, err := c.apply(r); err != nil {
			return err
		}
	}
	return nil
}

// pushAsync best-effort sends records to every peer without blocking the
// writer; anti-entropy repairs anything a push misses.
func (c *Center) pushAsync(records []Record) {
	c.mu.Lock()
	eps := make([]string, 0, len(c.peers))
	for _, ep := range c.peers {
		eps = append(eps, ep)
	}
	c.mu.Unlock()
	if len(eps) == 0 {
		return
	}
	payload := transport.MustEncode(pushMsg{From: c.space, Records: records})
	// Untracked on purpose: a push races shutdown harmlessly (the endpoint
	// just reports closed), and tying it to c.wg would race Stop's Wait.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		defer cancel()
		for _, ep := range eps {
			_, _ = c.ep.Request(ctx, ep, MsgFedPush, payload)
		}
	}()
}

func (c *Center) handleDigest(msg transport.Message) ([]byte, error) {
	var d digestMsg
	if err := transport.Decode(msg.Payload, &d); err != nil {
		return nil, err
	}
	return transport.Encode(digestReply{Records: c.missingFor(d.Digest)})
}

func (c *Center) handlePush(msg transport.Message) ([]byte, error) {
	var p pushMsg
	if err := transport.Decode(msg.Payload, &p); err != nil {
		return nil, err
	}
	for _, r := range p.Records {
		if _, err := c.apply(r); err != nil {
			return nil, err
		}
	}
	return nil, nil
}
