package cluster

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mdagent/internal/obs"
	"mdagent/internal/owl"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// Center is one smart space's registry center, federated with its peers:
// every app, resource, and device record written here is stamped with a
// per-record version vector (vclock.Version), pushed to peer centers
// best-effort, and reconciled by periodic anti-entropy digests. Reads see
// the union of all spaces once replication converges, so OWL rebinding
// queries resolve against every space's inventory. Center satisfies
// migrate.Catalog, so engines use it exactly like a single registry.
type Center struct {
	space string
	reg   *registry.Registry
	ep    *transport.Endpoint
	cfg   Config

	mu      sync.Mutex
	records map[string]Record
	// durable is the last copy of each snapshot record known to have met
	// a synchronous write concern — refreshed when a local write collects
	// its acks or a replicated record arrives already stamped durable,
	// and invalidated by tombstones. Failover prefers it over a fresher
	// head record that only ever existed on one center.
	durable map[string]Record
	peers   map[string]string // peer space -> endpoint name
	rng     *rand.Rand

	// reachable, when set, is the membership view: whether a peer space's
	// center is currently believed reachable. Durable writes consult it
	// to fail fast (degraded mode) instead of waiting out ack timeouts
	// against a partitioned majority. Nil assumes every peer reachable.
	reachable func(space string) bool
	// onDurability observes each synchronous-concern write outcome.
	onDurability func(DurabilityEvent)

	// pushers carries snapshot pushes (full records and deltas) to one
	// FIFO worker per peer, so each peer receives them in write order —
	// a reordered delta would be dropped at the peer and cost an
	// anti-entropy round to repair — while a dead peer only stalls its
	// own queue, never the healthy ones. Non-snapshot records keep the
	// unordered pushAsync path under WriteAsync; synchronous concerns
	// route every write through the workers so acks flow back per peer.
	pushers map[string]chan pushItem // peer endpoint -> ordered queue

	// Process-wide metrics, pinned at construction.
	mPush    *obs.Counter   // items handed to the ordered push workers
	mAck     *obs.Counter   // deliveries the peer acknowledged
	mNack    *obs.Counter   // failed deliveries + backlog refusals
	mRejects *obs.Counter   // inbound deltas this center could not chain
	mAckWait *obs.Histogram // synchronous write-concern ack wait

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// pushItem is one pre-encoded message awaiting ordered delivery.
type pushItem struct {
	msgType string
	payload []byte
	key     string // record key, for the durable delta full-record fallback
	// ack, when non-nil, receives exactly one delivery verdict for this
	// item (nil = the peer now holds the write). The channel is buffered
	// for every peer, so workers never block on a writer that timed out.
	ack chan<- error
}

// errPushBacklog reports a peer whose ordered push queue is full — it is
// stalled and cannot acknowledge a durable write in time.
var errPushBacklog = errors.New("cluster: peer push queue full")

// fedKeyPrefix prefixes the store keys the center persists its
// replication state (records + version vectors) under.
const fedKeyPrefix = "fed/"

// NewCenter creates the center for space over local registry reg, serving
// federation messages on ep. Replication state is persisted to the
// registry's store, so a center backed by a durable store resumes its
// version history after a restart instead of re-issuing counters its
// peers have already seen (which they would reject as stale). Call Start
// to begin anti-entropy; pushes and digest answers work as soon as it is
// created.
func NewCenter(space string, reg *registry.Registry, ep *transport.Endpoint, cfg Config) *Center {
	cfg = cfg.withDefaults()
	c := &Center{
		space:   space,
		reg:     reg,
		ep:      ep,
		cfg:     cfg,
		records: make(map[string]Record),
		durable: make(map[string]Record),
		peers:   make(map[string]string),
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(len(space)))),
		pushers: make(map[string]chan pushItem),
		stop:    make(chan struct{}),

		mPush:    obs.Default.Counter("mdagent_fed_push_total", "space", space),
		mAck:     obs.Default.Counter("mdagent_fed_ack_total", "space", space),
		mNack:    obs.Default.Counter("mdagent_fed_nack_total", "space", space),
		mRejects: obs.Default.Counter("mdagent_fed_delta_rejects_total", "space", space),
		mAckWait: obs.Default.Histogram("mdagent_fed_ack_wait_ns", "space", space),
	}
	db := reg.Store()
	_ = db.Scan(fedKeyPrefix, func(_ string, raw []byte) error {
		var r Record
		if err := transport.Decode(raw, &r); err != nil {
			return nil // corrupt frame; the peer re-offers it via anti-entropy
		}
		c.records[r.Key] = r
		if r.Kind == RecordSnapshot && !r.Deleted && r.Snap.Durable {
			c.durable[r.Key] = r // durability metadata survives a restart
		}
		return nil
	})
	ep.Handle(MsgFedDigest, c.handleDigest)
	ep.Handle(MsgFedPush, c.handlePush)
	ep.Handle(MsgFedSnapDelta, c.handleSnapDelta)
	ep.Handle(MsgFedDurable, c.handleDurable)
	return c
}

// Space returns the smart space this center serves.
func (c *Center) Space() string { return c.space }

// Registry exposes the center's local registry — after convergence it
// holds the union of every federated space's records.
func (c *Center) Registry() *registry.Registry { return c.reg }

// AddPeer federates with another space's center at the given endpoint.
func (c *Center) AddPeer(space, endpoint string) {
	c.mu.Lock()
	c.peers[space] = endpoint
	c.mu.Unlock()
}

// SetReachable wires the membership view durable writes consult: f
// reports whether a peer space's center is currently believed reachable.
// When too few peers are reachable to ever meet the write concern, a
// durable write fails fast with ErrNotDurable (degraded mode) instead of
// waiting out ack timeouts. Nil (the default) assumes every peer
// reachable.
func (c *Center) SetReachable(f func(space string) bool) {
	c.mu.Lock()
	c.reachable = f
	c.mu.Unlock()
}

// OnDurability registers an observer for synchronous-concern write
// outcomes (internal/core bridges it onto the context kernel as
// cluster.durable / cluster.degraded events).
func (c *Center) OnDurability(f func(DurabilityEvent)) {
	c.mu.Lock()
	c.onDurability = f
	c.mu.Unlock()
}

// reachablePeers counts the peers the membership view believes reachable
// right now, or -1 when no view is wired (assume reachable, wait the
// timeouts). Called OUTSIDE c.mu: the view calls into membership nodes
// whose locks must never nest under the center's.
func (c *Center) reachablePeers() int {
	c.mu.Lock()
	f := c.reachable
	spaces := make([]string, 0, len(c.peers))
	for s := range c.peers {
		spaces = append(spaces, s)
	}
	c.mu.Unlock()
	if f == nil {
		return -1
	}
	n := 0
	for _, s := range spaces {
		if f(s) {
			n++
		}
	}
	return n
}

// reportDurability fires the durability observer, off every center lock.
func (c *Center) reportDurability(ev DurabilityEvent) {
	c.mu.Lock()
	f := c.onDurability
	c.mu.Unlock()
	if f != nil {
		f(ev)
	}
}

// awaitAcks is the synchronous leg of a durable write: it drains per-peer
// delivery verdicts until the concern is met, every peer answered, or the
// ack window closes. Exactly `sent` verdicts will eventually arrive on
// acks (the channel is buffered for all of them), so returning early
// never strands a worker.
func (c *Center) awaitAcks(ctx context.Context, acks <-chan error, sent, required int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	defer func() { c.mAckWait.Observe(time.Since(start)) }()
	timer := time.NewTimer(c.cfg.AckTimeout)
	defer timer.Stop()
	acked, responded := 0, 0
	for acked < required && responded < sent {
		select {
		case err := <-acks:
			responded++
			if err == nil {
				acked++
			}
		case <-timer.C:
			return acked
		case <-ctx.Done():
			return acked
		}
	}
	return acked
}

// markDurable stamps a snapshot record as having met its write concern —
// if it is still the version that was written — refreshes the durable
// stash failover prefers, and broadcasts a best-effort confirmation so
// peers that acked the data push stamp their copies too (FIFO-ordered
// behind the push itself). Without the confirm, peer stashes would only
// advance via anti-entropy deliveries of already-stamped records and
// failover's durable-preference could prefer an arbitrarily old capture.
func (c *Center) markDurable(key string, ver vclock.Version) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.records[key]
	if !ok || rec.Kind != RecordSnapshot || rec.Deleted || rec.Version.Compare(ver) != vclock.Equal {
		return
	}
	rec.Snap.Durable = true
	c.records[key] = rec
	c.persist(rec)
	c.durable[key] = rec
	c.enqueuePushLocked(MsgFedDurable, transport.MustEncode(durableMsg{
		From: c.space, Key: key, Version: ver.Clone(),
	}), key, nil)
}

// handleDurable adopts a writer's confirmation that a snapshot write met
// its concern: if our stored record is exactly that version, stamp it
// and refresh the durable stash.
func (c *Center) handleDurable(msg transport.Message) ([]byte, error) {
	var m durableMsg
	if err := transport.Decode(msg.Payload, &m); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.records[m.Key]
	if !ok || rec.Kind != RecordSnapshot || rec.Deleted || rec.Version.Compare(m.Version) != vclock.Equal {
		return nil, nil // different (or newer) state here: nothing to stamp
	}
	rec.Snap.Durable = true
	c.records[m.Key] = rec
	c.persist(rec)
	c.durable[m.Key] = rec
	return nil, nil
}

// Start launches the anti-entropy loop.
func (c *Center) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.SyncInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.syncOnce()
			}
		}
	}()
}

// Stop halts anti-entropy. The center answers peers until its endpoint
// closes.
func (c *Center) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// --- Write API (each write stamps a version and replicates). ---

// RegisterApp registers an application installation, stamping a version
// and replicating to peers. An empty Space defaults to this center's.
func (c *Center) RegisterApp(ctx context.Context, rec registry.AppRecord) error {
	if rec.Space == "" {
		rec.Space = c.space
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	return c.write(ctx, Record{Key: rec.Key(), Kind: RecordApp, App: rec})
}

// UnregisterApp tombstones an application installation across the
// federation.
func (c *Center) UnregisterApp(ctx context.Context, name, host string) error {
	rec := registry.AppRecord{Name: name, Host: host}
	return c.write(ctx, Record{Key: rec.Key(), Kind: RecordApp, App: rec, Deleted: true})
}

// snapKey is the replication-table key for an app's latest snapshot.
// Keyed by application (not host): failover wants the freshest state
// wherever it was captured, and a migrating app's new host simply
// supersedes the old one's record.
func snapKey(appName string) string { return "snap/" + appName }

// A Center is the state pipeline's publisher.
var _ state.Publisher = (*Center)(nil)

// PutSnapshot applies one replication put — a full base frame or a delta
// against the stored record's newest state — and replicates the result
// federation-wide. The center assigns the record's capture sequence
// (previous + 1 under the write lock), so concurrent snapshots from
// different spaces resolve to the longest capture history. A delta whose
// base digest does not match the stored state fails with
// state.ErrNeedFull (the publisher re-sends a full frame); an accepted
// delta is appended to the record's chain, compacted into a fresh base
// when the chain grows past Config.MaxDeltaChain or outweighs half the
// base frame, and pushed to peers as a delta-only message so the
// federation wire carries kilobytes, not the multi-megabyte base.
func (c *Center) PutSnapshot(ctx context.Context, put state.SnapshotPut) (state.SnapshotStamp, error) {
	if put.App == "" {
		return state.SnapshotStamp{}, fmt.Errorf("cluster: snapshot put has no app")
	}
	// The put's write-concern header overrides the center default. An
	// unknown value is refused before anything is stored or enqueued: a
	// malformed header must not poison the record or the push workers.
	wc := c.cfg.WriteConcern
	if put.Concern != "" {
		var err error
		if wc, err = ParseWriteConcern(put.Concern); err != nil {
			return state.SnapshotStamp{}, fmt.Errorf("cluster: snapshot put for %s: %w", put.App, err)
		}
	}
	reach := -1
	if wc != WriteAsync {
		reach = c.reachablePeers()
	}
	if put.Space == "" {
		put.Space = c.space
	}
	if put.Delta {
		// A frame that fails its checksum, or whose embedded base digest
		// disagrees with the put's, would poison the stored chain forever
		// (every later delta still chains on the advertised digest, so
		// nothing downstream would ever repair it). Refuse it up front.
		if d, err := state.DecodeDelta(put.Frame); err != nil || d.BaseDigest != put.BaseDigest {
			return state.SnapshotStamp{}, fmt.Errorf("cluster: delta put for %s: bad frame: %w", put.App, state.ErrNeedFull)
		}
	}
	key := snapKey(put.App)
	c.mu.Lock()
	prev := c.records[key]
	var rec Record
	if put.Delta {
		if prev.Kind != RecordSnapshot || prev.Deleted || len(prev.Snap.Frame) == 0 ||
			prev.Snap.StateDigest != put.BaseDigest {
			c.mu.Unlock()
			return state.SnapshotStamp{}, fmt.Errorf("cluster: delta put for %s: %w", put.App, state.ErrNeedFull)
		}
		snap := prev.Snap
		snap.Deltas = append(append([][]byte(nil), prev.Snap.Deltas...), put.Frame)
		snap.Seq++
		snap.Host, snap.Space, snap.At = put.Host, put.Space, put.At
		snap.StateDigest = put.NewDigest
		rec = Record{Key: key, Kind: RecordSnapshot, Snap: snap}
	} else {
		rec = Record{Key: key, Kind: RecordSnapshot, Snap: state.SnapshotRecord{
			App: put.App, Host: put.Host, Space: put.Space, At: put.At,
			Seq: prev.Snap.Seq + 1, BaseSeq: prev.Snap.Seq + 1,
			Frame: put.Frame, StateDigest: put.NewDigest,
		}}
	}
	rec.Version = prev.Version.Tick(c.space)
	rec.Origin = c.space
	c.records[key] = rec
	c.persist(rec)
	stamp := state.SnapshotStamp{Seq: rec.Snap.Seq, BaseSeq: rec.Snap.BaseSeq, Chain: len(rec.Snap.Deltas)}
	peerCount := len(c.peers)
	required := requiredAcks(wc, len(c.peers))
	// Degraded mode: the membership view says too few peer centers are
	// reachable to ever meet the concern — fall back to async replication
	// and fail fast instead of waiting out ack timeouts per write.
	degraded := required > 0 && reach >= 0 && reach < required
	var acks chan error
	sent := 0
	// Enqueue while still holding c.mu: two racing puts must hit the
	// ordered push queue in the same order their sequences were assigned.
	// A delta put always pushes just the delta — even when this center
	// compacted its own chain — because peers track the state by digest
	// and compact independently; only a fresh base frame needs the full
	// record on the wire. (A durable delta push falls back to the full
	// record per peer when the peer cannot chain the delta.)
	if required > 0 && !degraded {
		acks = make(chan error, len(c.peers))
	}
	if put.Delta {
		sent = c.enqueuePushLocked(MsgFedSnapDelta, transport.MustEncode(snapDeltaMsg{
			From: c.space, Key: rec.Key, Version: rec.Version.Clone(),
			Seq: rec.Snap.Seq, Host: rec.Snap.Host, Space: rec.Snap.Space, At: rec.Snap.At,
			BaseDigest: put.BaseDigest, NewDigest: put.NewDigest, Delta: put.Frame,
		}), key, acks)
	} else {
		sent = c.enqueuePushLocked(MsgFedPush, transport.MustEncode(pushMsg{From: c.space, Records: []Record{rec}}), key, acks)
	}
	ver := rec.Version.Clone()
	c.mu.Unlock()
	c.compactIfHeavy(key)
	if required == 0 {
		if wc != WriteAsync {
			c.reportDurability(DurabilityEvent{Key: key, Concern: wc, Durable: true})
		}
		return stamp, nil
	}
	if degraded {
		c.reportDurability(DurabilityEvent{Key: key, Concern: wc, Required: required, Degraded: true})
		return stamp, fmt.Errorf("cluster: put %s: %d/%d peers reachable, concern %s unmeetable: %w",
			key, reach, peerCount, wc, ErrNotDurable)
	}
	acked := c.awaitAcks(ctx, acks, sent, required)
	if acked < required {
		c.reportDurability(DurabilityEvent{Key: key, Concern: wc, Required: required, Acked: acked})
		return stamp, fmt.Errorf("cluster: put %s acked by %d/%d peers (concern %s): %w",
			key, acked, required, wc, ErrNotDurable)
	}
	c.markDurable(key, ver)
	c.reportDurability(DurabilityEvent{Key: key, Concern: wc, Required: required, Acked: acked, Durable: true})
	return stamp, nil
}

// enqueuePushLocked hands one pre-encoded message to every peer's
// ordered push worker (created lazily) and returns how many verdicts the
// caller may expect. An async item (nil ack) is dropped when a peer's
// queue is full — that peer is stalled and anti-entropy will repair it;
// a durable item gets an immediate backlog verdict instead, so every
// enqueued peer accounts for exactly one ack-channel send. Callers hold
// c.mu.
func (c *Center) enqueuePushLocked(msgType string, payload []byte, key string, ack chan<- error) int {
	it := pushItem{msgType: msgType, payload: payload, key: key, ack: ack}
	sent := 0
	for _, ep := range c.peers {
		q, ok := c.pushers[ep]
		if !ok {
			q = make(chan pushItem, 256)
			c.pushers[ep] = q
			c.wg.Add(1)
			go c.pushWorker(ep, q)
		}
		select {
		case q <- it:
			c.mPush.Inc()
			sent++
		default:
			c.mNack.Inc()
			if ack != nil {
				ack <- errPushBacklog // buffered for every peer: never blocks
				sent++
			}
		}
	}
	return sent
}

// pushWorker delivers one peer's queued pushes in order, each under its
// own timeout, so a dead peer burns only its own queue's time. Durable
// items get their delivery verdict sent back to the waiting writer.
func (c *Center) pushWorker(peer string, q chan pushItem) {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case it := <-q:
			err := c.deliverPush(peer, it)
			if err == nil {
				c.mAck.Inc()
			} else {
				c.mNack.Inc()
			}
			if it.ack != nil {
				it.ack <- err
			}
		}
	}
}

// deliverPush sends one queued item to a peer. For a durable delta push
// the peer reports in-band whether it could chain the delta; a peer
// whose base diverged does not hold the write, so the pusher falls back
// to the whole current record — apply()'s version rules land it there
// regardless of the peer's state, making the write (or a successor of
// it) durable on that peer.
func (c *Center) deliverPush(peer string, it pushItem) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	reply, err := c.ep.Request(ctx, peer, it.msgType, it.payload)
	cancel()
	if err != nil {
		return err
	}
	if it.ack == nil || it.msgType != MsgFedSnapDelta {
		// Async push, or a full-record push whose error-free reply is the
		// ack: after handlePush returns, the peer's stored version
		// supersedes-or-equals the pushed one — either it installed the
		// record, already held it (or newer), or resolved a concurrent
		// conflict to the merged vector, which dominates the pushed write.
		// A conflict-losing payload is superseded by deterministic
		// resolution, not lost: the writer converges to the same winner
		// via anti-entropy whether it lives or dies, so it counts as
		// durable.
		return nil
	}
	var ack snapDeltaAck
	if err := transport.Decode(reply.Payload, &ack); err != nil {
		return err
	}
	if ack.Applied {
		return nil
	}
	c.mu.Lock()
	rec, ok := c.records[it.key]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: record %s vanished before durable fallback push", it.key)
	}
	fctx, fcancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer fcancel()
	_, err = c.ep.Request(fctx, peer, MsgFedPush,
		transport.MustEncode(pushMsg{From: c.space, Records: []Record{rec}}))
	return err
}

// chainHeavy reports whether a snapshot record's delta chain has grown
// past Config.MaxDeltaChain deltas or outweighs half its base — past
// that point the chain costs more to store, ship, and reassemble than
// the base it amends.
func (c *Center) chainHeavy(rec Record) bool {
	if rec.Kind != RecordSnapshot || rec.Deleted || len(rec.Snap.Deltas) == 0 {
		return false
	}
	var deltaBytes int
	for _, d := range rec.Snap.Deltas {
		deltaBytes += len(d)
	}
	return len(rec.Snap.Deltas) > c.cfg.MaxDeltaChain || deltaBytes > len(rec.Snap.Frame)/2
}

// compactIfHeavy folds a heavy delta chain into a fresh base frame. The
// multi-megabyte reassembly and re-encode run OUTSIDE c.mu — a failover
// racing a compaction must not block on the center lock for a gob
// round-trip — and the result is swapped in only if the record has not
// changed meanwhile (a newer write will trigger its own compaction).
// Compaction changes only the representation: digest, sequence, and
// version are untouched, so peers and publishers are unaffected. A
// chain that fails to reassemble is left alone (the restore-side
// fallback handles it).
func (c *Center) compactIfHeavy(key string) {
	c.mu.Lock()
	rec, ok := c.records[key]
	if !ok || !c.chainHeavy(rec) {
		c.mu.Unlock()
		return
	}
	snap := rec.Snap // Frame/Deltas are append-only shared slices: safe to read unlocked
	ver := rec.Version.Clone()
	c.mu.Unlock()

	ts, err := snap.Snapshot()
	if err != nil {
		return
	}
	frame, err := state.EncodeSnapshot(ts)
	if err != nil {
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.records[key]
	if !ok || cur.Kind != RecordSnapshot || cur.Deleted || cur.Version.Compare(ver) != vclock.Equal {
		return // superseded while we compacted; the next write re-tries
	}
	cur.Snap.Frame = frame
	cur.Snap.BaseSeq = cur.Snap.Seq
	cur.Snap.Deltas = nil
	c.records[key] = cur
	c.persist(cur)
}

// handleSnapDelta appends a peer's delta push to our copy of the record
// when — and only when — our newest state is exactly the base the delta
// was computed against and the incoming version strictly supersedes
// ours. Anything else is not applied — anti-entropy delivers the
// authoritative record shortly — but the reply always reports whether
// this center now holds the pushed write (applied it, or already held
// that version or newer), so a durable pusher knows when to fall back to
// a full-record push.
func (c *Center) handleSnapDelta(msg transport.Message) ([]byte, error) {
	var m snapDeltaMsg
	if err := transport.Decode(msg.Payload, &m); err != nil {
		return nil, err
	}
	nack, err := transport.Encode(snapDeltaAck{})
	if err != nil {
		return nil, err
	}
	// Same up-front frame validation as PutSnapshot: appending a torn or
	// internally inconsistent delta would poison this replica's chain
	// permanently (versions match the writer's, so anti-entropy would
	// never re-offer the record).
	if d, err := state.DecodeDelta(m.Delta); err != nil || d.BaseDigest != m.BaseDigest {
		c.mRejects.Inc()
		return nack, nil
	}
	c.mu.Lock()
	ex, ok := c.records[m.Key]
	if !ok || ex.Kind != RecordSnapshot || ex.Deleted ||
		ex.Snap.StateDigest != m.BaseDigest ||
		ex.Version.Compare(m.Version) != vclock.Before {
		applied := false
		if ok {
			// Already at (or past) the pushed version: the write is not
			// lost if this center is the writer's only surviving peer.
			cmp := ex.Version.Compare(m.Version)
			applied = cmp == vclock.Equal || cmp == vclock.After
		}
		c.mu.Unlock()
		if applied {
			return transport.Encode(snapDeltaAck{Applied: true})
		}
		c.mRejects.Inc()
		return nack, nil
	}
	rec := ex
	rec.Snap.Deltas = append(append([][]byte(nil), ex.Snap.Deltas...), m.Delta)
	rec.Snap.Seq = m.Seq
	rec.Snap.Host, rec.Snap.Space, rec.Snap.At = m.Host, m.Space, m.At
	rec.Snap.StateDigest = m.NewDigest
	rec.Snap.Durable = false // this copy's durability is the writer's call
	rec.Version = m.Version.Clone()
	rec.Origin = m.From
	c.records[m.Key] = rec
	c.persist(rec)
	c.mu.Unlock()
	c.compactIfHeavy(m.Key)
	return transport.Encode(snapDeltaAck{Applied: true})
}

// DropSnapshot tombstones an application's replicated snapshot — the
// graceful-stop path, so failover never restores state for an app an
// operator deliberately stopped.
func (c *Center) DropSnapshot(ctx context.Context, appName, host string) error {
	return c.write(ctx, Record{
		Key: snapKey(appName), Kind: RecordSnapshot,
		Snap: state.SnapshotRecord{App: appName, Host: host}, Deleted: true,
	})
}

// LatestSnapshot returns the freshest replicated snapshot this center
// knows for an application (false when none, or when it was tombstoned).
func (c *Center) LatestSnapshot(appName string) (state.SnapshotRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.records[snapKey(appName)]
	if !ok || r.Deleted || r.Kind != RecordSnapshot {
		return state.SnapshotRecord{}, false
	}
	return r.Snap, true
}

// SnapshotSince returns the freshest replicated snapshot for an
// application, trimmed against what the requester already holds. When
// the stored record extends the same base frame (haveBaseSeq) and the
// requester's digest pins the chain state at haveSeq, the returned
// record is tail-only (deltaOnly true): head metadata plus the deltas
// past haveSeq, no base frame — kilobytes where the full record is
// megabytes. Any divergence (compacted base, unknown digest, requester
// ahead) falls back to the full record, so the caller always ends up
// restorable.
func (c *Center) SnapshotSince(appName string, haveBaseSeq, haveSeq uint64, haveDigest [sha256.Size]byte) (rec state.SnapshotRecord, found, deltaOnly bool) {
	rec, found = c.LatestSnapshot(appName)
	if !found {
		return state.SnapshotRecord{}, false, false
	}
	tail, ok := deltaTail(rec, haveBaseSeq, haveSeq, haveDigest)
	if !ok {
		return rec, true, false
	}
	rec.Frame = nil
	rec.Deltas = tail
	return rec, true, true
}

// deltaTail returns the deltas of rec past the (haveBaseSeq, haveSeq,
// haveDigest) prefix, or false when rec does not verifiably extend that
// prefix. The digest check pins the exact state: when the requester is
// behind, the first missing delta must chain onto haveDigest; when it is
// current, the record's head digest must equal it.
func deltaTail(rec state.SnapshotRecord, haveBaseSeq, haveSeq uint64, haveDigest [sha256.Size]byte) ([][]byte, bool) {
	if rec.BaseSeq != haveBaseSeq || haveSeq < rec.BaseSeq || haveSeq > rec.Seq {
		return nil, false
	}
	idx := int(haveSeq - rec.BaseSeq)
	if idx > len(rec.Deltas) {
		return nil, false
	}
	if idx == len(rec.Deltas) {
		if rec.StateDigest != haveDigest {
			return nil, false
		}
		return nil, true // requester is current: empty tail
	}
	d, err := state.DecodeDelta(rec.Deltas[idx])
	if err != nil || d.BaseDigest != haveDigest {
		return nil, false
	}
	return rec.Deltas[idx:], true
}

// SnapshotHeads lists the metadata of every live replicated snapshot
// this center holds, sorted by app — the control plane's snapshot view.
// Durability metadata comes from the durable stash when it matches the
// head version, so a listed head reflects what failover would prefer.
func (c *Center) SnapshotHeads() []state.SnapshotHead {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []state.SnapshotHead
	for _, r := range c.records {
		if r.Kind != RecordSnapshot || r.Deleted {
			continue
		}
		out = append(out, r.Snap.Head())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// LatestDurableSnapshot returns the last snapshot record for an
// application this center knows met its write concern — possibly older
// than LatestSnapshot's head when the newest writes fell short of their
// acks. Failover prefers it over a fresher-but-unacked head: an unacked
// record may be a minority-partition write the rest of the federation
// never saw, and restoring it would fork state the survivors cannot
// reconcile.
func (c *Center) LatestDurableSnapshot(appName string) (state.SnapshotRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.durable[snapKey(appName)]
	if !ok || r.Deleted || r.Kind != RecordSnapshot {
		return state.SnapshotRecord{}, false
	}
	return r.Snap, true
}

// RegisterResource registers a resource description federation-wide.
func (c *Center) RegisterResource(ctx context.Context, res owl.Resource) error {
	if err := res.Validate(); err != nil {
		return err
	}
	return c.write(ctx, Record{Key: "res/" + res.ID, Kind: RecordResource, Res: res})
}

// RegisterDevice registers a host device profile federation-wide.
func (c *Center) RegisterDevice(ctx context.Context, dev wsdl.DeviceProfile) error {
	if dev.Host == "" {
		return fmt.Errorf("cluster: device profile has no host")
	}
	return c.write(ctx, Record{Key: "dev/" + dev.Host, Kind: RecordDevice, Dev: dev})
}

// PutBundle stores a signed app bundle federation-wide: one push to any
// center replicates the bundle to every space under the configured
// write concern, so any host in the federation can install it. The
// center stores the bytes opaquely — the pushing daemon verified the
// signature against its trusted set, and every installing host verifies
// again before instantiating.
func (c *Center) PutBundle(ctx context.Context, name string, raw []byte) error {
	if name == "" {
		return fmt.Errorf("cluster: bundle has no name")
	}
	if len(raw) == 0 {
		return fmt.Errorf("cluster: bundle %q is empty", name)
	}
	return c.write(ctx, Record{
		Key:  "bundle/" + name,
		Kind: RecordBundle,
		Bdl:  registry.BundleRecord{Name: name, Raw: raw},
	})
}

// GetBundle reads a bundle from the replicated view.
func (c *Center) GetBundle(_ context.Context, name string) ([]byte, bool, error) {
	return c.reg.GetBundle(name)
}

// Bundles lists the bundles in the replicated view.
func (c *Center) Bundles(_ context.Context) ([]registry.BundleInfo, error) {
	return c.reg.Bundles()
}

// write stamps a locally originated record and replicates it under the
// center's configured write concern.
func (c *Center) write(ctx context.Context, r Record) error {
	_, err := c.writeStamped(ctx, r)
	return err
}

// writeStamped stamps a locally originated record, replicates it, and
// returns it as stamped. Stamping, installing, and mirroring into the
// registry happen under one critical section: two racing writers must
// produce two *ordered* versions (the second ticks on top of the first),
// never two identical vectors that peers could receive in different
// orders and diverge on. Snapshot records additionally get the next
// capture sequence under the same section.
//
// Under a synchronous write concern the record is pushed through the
// per-peer FIFO workers and the call blocks until enough peers acked (or
// the ack window closes, returning the record plus ErrNotDurable — the
// write landed locally and anti-entropy keeps retrying delivery). Under
// WriteAsync, and in degraded mode, the unordered best-effort pushAsync
// path is kept.
func (c *Center) writeStamped(ctx context.Context, r Record) (Record, error) {
	wc := c.cfg.WriteConcern
	reach := -1
	if wc != WriteAsync {
		reach = c.reachablePeers()
	}
	c.mu.Lock()
	prev := c.records[r.Key]
	r.Version = prev.Version.Tick(c.space)
	r.Origin = c.space
	if r.Kind == RecordSnapshot {
		r.Snap.Seq = prev.Snap.Seq + 1
		if r.Deleted {
			// A graceful-stop tombstone invalidates the durable stash:
			// failover must never restore a deliberately stopped app from
			// its last quorum-acked snapshot.
			delete(c.durable, r.Key)
		}
	}
	c.records[r.Key] = r
	c.persist(r)
	err := c.applyToRegistry(r)
	required := requiredAcks(wc, len(c.peers))
	degraded := required > 0 && reach >= 0 && reach < required
	var acks chan error
	sent := 0
	// Only an error-free write replicates synchronously — mirroring the
	// async path, which also suppresses its push on a registry error.
	if err == nil && required > 0 && !degraded {
		acks = make(chan error, len(c.peers))
		sent = c.enqueuePushLocked(MsgFedPush,
			transport.MustEncode(pushMsg{From: c.space, Records: []Record{r}}), r.Key, acks)
	}
	ver := r.Version.Clone()
	c.mu.Unlock()
	if err != nil {
		return r, err
	}
	if required == 0 {
		c.pushAsync([]Record{r})
		if wc != WriteAsync {
			c.reportDurability(DurabilityEvent{Key: r.Key, Concern: wc, Durable: true})
		}
		return r, nil
	}
	if degraded {
		c.pushAsync([]Record{r})
		c.reportDurability(DurabilityEvent{Key: r.Key, Concern: wc, Required: required, Degraded: true})
		return r, fmt.Errorf("cluster: write %s: %d peers reachable, concern %s unmeetable: %w",
			r.Key, reach, wc, ErrNotDurable)
	}
	acked := c.awaitAcks(ctx, acks, sent, required)
	if acked < required {
		c.reportDurability(DurabilityEvent{Key: r.Key, Concern: wc, Required: required, Acked: acked})
		return r, fmt.Errorf("cluster: write %s acked by %d/%d peers (concern %s): %w",
			r.Key, acked, required, wc, ErrNotDurable)
	}
	c.markDurable(r.Key, ver)
	c.reportDurability(DurabilityEvent{Key: r.Key, Concern: wc, Required: required, Acked: acked, Durable: true})
	return r, nil
}

// persist writes a record's replication state through to the registry's
// store (a no-op cost for memory-backed stores); callers hold c.mu.
func (c *Center) persist(r Record) {
	if raw, err := transport.Encode(r); err == nil {
		_ = c.reg.Store().Put(fedKeyPrefix+r.Key, raw)
	}
}

// apply installs a remotely received record if its version wins,
// mirroring it into the local registry. Concurrent versions resolve
// deterministically (higher origin space wins) with the merged vector,
// so every center converges to the same state regardless of delivery
// order. The registry mirror happens under c.mu so two winning applies
// cannot land in the registry out of version order.
func (c *Center) apply(r Record) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ex, known := c.records[r.Key]
	if known {
		switch r.Version.Compare(ex.Version) {
		case vclock.Before, vclock.Equal:
			return false, nil
		case vclock.Concurrent:
			merged := r.Version.Merge(ex.Version)
			if !concurrentWins(r, ex) {
				ex.Version = merged
				c.records[r.Key] = ex
				c.persist(ex)
				return false, nil
			}
			r.Version = merged
		}
	}
	c.records[r.Key] = r
	c.persist(r)
	if r.Kind == RecordSnapshot {
		if r.Deleted {
			// A replicated tombstone invalidates the durable stash too.
			delete(c.durable, r.Key)
		} else if r.Snap.Durable {
			// Anti-entropy can deliver a record its writer already
			// stamped durable; adopt that knowledge.
			c.durable[r.Key] = r
		}
	}
	return true, c.applyToRegistry(r)
}

// concurrentWins resolves a concurrent-version conflict deterministically
// — every center must pick the same winner regardless of delivery order,
// so only record-payload fields may be consulted. Snapshot records prefer
// the longer capture history (higher sequence), then a graceful-stop
// tombstone (a deliberate stop must not be undone by a concurrent capture
// whose At would beat the tombstone's zero time), then the later capture
// time; everything else, and residual ties, fall to the higher origin
// space.
func concurrentWins(r, ex Record) bool {
	if r.Kind == RecordSnapshot && ex.Kind == RecordSnapshot {
		if r.Snap.Seq != ex.Snap.Seq {
			return r.Snap.Seq > ex.Snap.Seq
		}
		if r.Deleted != ex.Deleted {
			return r.Deleted
		}
		if !r.Snap.At.Equal(ex.Snap.At) {
			return r.Snap.At.After(ex.Snap.At)
		}
	}
	return r.Origin >= ex.Origin
}

// applyToRegistry mirrors a winning record into the local registry.
func (c *Center) applyToRegistry(r Record) error {
	switch r.Kind {
	case RecordApp:
		if r.Deleted {
			return c.reg.UnregisterApp(r.App.Name, r.App.Host)
		}
		return c.reg.RegisterApp(r.App)
	case RecordResource:
		if r.Deleted {
			return nil // resource tombstones only stop replication
		}
		return c.reg.RegisterResource(r.Res)
	case RecordDevice:
		if r.Deleted {
			return nil
		}
		return c.reg.RegisterDevice(r.Dev)
	case RecordSnapshot:
		// Snapshots live only in the replication table (and its persisted
		// mirror); the registry proper never sees them.
		return nil
	case RecordBundle:
		if r.Deleted {
			return c.reg.DeleteBundle(r.Bdl.Name)
		}
		return c.reg.PutBundle(r.Bdl.Name, r.Bdl.Raw)
	}
	return fmt.Errorf("cluster: unknown record kind %d", r.Kind)
}

// --- Read API (local registry = converged union; Catalog shape). ---

// LookupApp reads one installation record from the replicated view.
func (c *Center) LookupApp(_ context.Context, name, host string) (registry.AppRecord, bool, error) {
	return c.reg.LookupApp(name, host)
}

// Device reads a host device profile from the replicated view.
func (c *Center) Device(_ context.Context, host string) (wsdl.DeviceProfile, bool, error) {
	dev, ok := c.reg.Device(host)
	return dev, ok, nil
}

// PlanRebinding answers a rebinding plan against the replicated union of
// every space's resources.
func (c *Center) PlanRebinding(_ context.Context, src owl.Resource, destHost string, mode owl.MatchMode) (owl.Rebinding, error) {
	return c.reg.PlanRebinding(src, destHost, mode)
}

// Serve binds the standard registry wire protocol onto ep with the write
// operations routed through the center (versioned + replicated) instead
// of straight into the local store — remote daemons talk to a federated
// center exactly as they would to a standalone registry, but their
// registrations propagate to every space. Reads keep the plain registry
// handlers (the local store holds the converged union).
func (c *Center) Serve(ep *transport.Endpoint) *Center {
	c.reg.Serve(ep) // read handlers + fallback writes...
	// The registry wire protocol has no reply body for writes, so a
	// durability shortfall cannot be reported in-band there; the write
	// landed locally and anti-entropy retries delivery, so remote
	// registrations succeed and the shortfall surfaces through the
	// center's own durability events. Snapshot puts DO carry the verdict
	// back (putSnapshotReply.NotDurable) — remote replicators re-queue.
	stripNotDurable := func(err error) error {
		if errors.Is(err, ErrNotDurable) {
			return nil
		}
		return err
	}
	// ...then shadow the write handlers with replicating versions.
	ep.Handle(registry.MsgRegisterApp, func(msg transport.Message) ([]byte, error) {
		var rec registry.AppRecord
		if err := transport.DecodeSealed(msg.Payload, &rec); err != nil {
			return nil, err
		}
		return nil, stripNotDurable(c.RegisterApp(context.Background(), rec))
	})
	ep.Handle(registry.MsgUnregisterApp, func(msg transport.Message) ([]byte, error) {
		var req struct{ Name, Host string }
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		return nil, stripNotDurable(c.UnregisterApp(context.Background(), req.Name, req.Host))
	})
	ep.Handle(registry.MsgRegisterResource, func(msg transport.Message) ([]byte, error) {
		var res owl.Resource
		if err := transport.DecodeSealed(msg.Payload, &res); err != nil {
			return nil, err
		}
		return nil, stripNotDurable(c.RegisterResource(context.Background(), res))
	})
	ep.Handle(registry.MsgRegisterDevice, func(msg transport.Message) ([]byte, error) {
		var dev wsdl.DeviceProfile
		if err := transport.DecodeSealed(msg.Payload, &dev); err != nil {
			return nil, err
		}
		return nil, stripNotDurable(c.RegisterDevice(context.Background(), dev))
	})
	ep.Handle(registry.MsgPutBundle, func(msg transport.Message) ([]byte, error) {
		var req struct {
			Name string
			Raw  []byte
		}
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		return nil, stripNotDurable(c.PutBundle(context.Background(), req.Name, req.Raw))
	})
	// Snapshot put/get: multi-process daemons (cmd/mdagentd) join the
	// state pipeline over the same wire as their registry traffic. The
	// need-full signal rides in-band — typed errors do not survive the
	// transport, and the remote replicator must be able to tell "send me
	// a base" from a real failure.
	ep.Handle(MsgPutSnapshot, func(msg transport.Message) ([]byte, error) {
		// v2 fast frames (single and batched) answer in kind; v1 gob
		// seals keep the reply shape pre-v2 clients decode. Any other
		// version falls through to DecodeSealed's typed ErrVersion
		// refusal.
		if transport.IsFast(msg.Payload) {
			return c.putSnapshotFast(msg.Payload)
		}
		var put state.SnapshotPut
		if err := transport.DecodeSealed(msg.Payload, &put); err != nil {
			return nil, err
		}
		stamp, err := c.PutSnapshot(context.Background(), put)
		if errors.Is(err, state.ErrNeedFull) {
			return transport.Encode(putSnapshotReply{NeedFull: true})
		}
		if errors.Is(err, ErrNotDurable) {
			return transport.Encode(putSnapshotReply{Stamp: stamp, NotDurable: true})
		}
		if err != nil {
			// Including a malformed write-concern header: the put was
			// refused before anything was stored or enqueued, so the
			// error reply cannot poison the FIFO push workers.
			return nil, err
		}
		return transport.Encode(putSnapshotReply{Stamp: stamp})
	})
	ep.Handle(MsgGetSnapshot, func(msg transport.Message) ([]byte, error) {
		var req getSnapshotReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		if req.Have {
			rec, found, deltaOnly := c.SnapshotSince(req.App, req.HaveBaseSeq, req.HaveSeq, req.HaveDigest)
			return transport.Encode(getSnapshotReply{Rec: rec, Found: found, DeltaOnly: deltaOnly})
		}
		rec, found := c.LatestSnapshot(req.App)
		return transport.Encode(getSnapshotReply{Rec: rec, Found: found})
	})
	ep.Handle(MsgDropSnapshot, func(msg transport.Message) ([]byte, error) {
		var req dropSnapshotReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		return nil, stripNotDurable(c.DropSnapshot(context.Background(), req.App, req.Host))
	})
	ep.Handle(MsgListSnaps, func(msg transport.Message) ([]byte, error) {
		if _, err := transport.Open(msg.Payload); err != nil {
			return nil, err
		}
		return transport.Encode(listSnapsReply{Heads: c.SnapshotHeads()})
	})
	return c
}

// --- Replication plumbing. ---

// digest snapshots key -> version for anti-entropy.
func (c *Center) digest() map[string]vclock.Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := make(map[string]vclock.Version, len(c.records))
	for k, r := range c.records {
		d[k] = r.Version.Clone()
	}
	return d
}

// missingFor collects the records the given digest has not seen (unknown
// keys, or versions ours is not dominated by).
func (c *Center) missingFor(d map[string]vclock.Version) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Record
	for k, r := range c.records {
		theirs, ok := d[k]
		if !ok || !theirs.Dominates(r.Version) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// syncOnce pulls from one random peer.
func (c *Center) syncOnce() {
	c.mu.Lock()
	var spaces []string
	for s := range c.peers {
		spaces = append(spaces, s)
	}
	if len(spaces) == 0 {
		c.mu.Unlock()
		return
	}
	sort.Strings(spaces)
	peer := c.peers[spaces[c.rng.Intn(len(spaces))]]
	c.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	_ = c.pullFrom(ctx, peer)
}

// SyncNow performs one synchronous digest exchange with every peer —
// tests and benches use it to force convergence without waiting out the
// anti-entropy timer.
func (c *Center) SyncNow(ctx context.Context) error {
	c.mu.Lock()
	eps := make([]string, 0, len(c.peers))
	for _, ep := range c.peers {
		eps = append(eps, ep)
	}
	c.mu.Unlock()
	sort.Strings(eps)
	var firstErr error
	for _, ep := range eps {
		if err := c.pullFrom(ctx, ep); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// pullFrom sends our digest to a peer and applies whatever it returns.
func (c *Center) pullFrom(ctx context.Context, endpoint string) error {
	var reply digestReply
	err := c.ep.RequestDecode(ctx, endpoint, MsgFedDigest,
		transport.MustEncode(digestMsg{From: c.space, Digest: c.digest()}), &reply)
	if err != nil {
		return err
	}
	for _, r := range reply.Records {
		if _, err := c.apply(r); err != nil {
			return err
		}
	}
	return nil
}

// pushAsync best-effort sends records to every peer without blocking the
// writer; anti-entropy repairs anything a push misses.
func (c *Center) pushAsync(records []Record) {
	c.mu.Lock()
	eps := make([]string, 0, len(c.peers))
	for _, ep := range c.peers {
		eps = append(eps, ep)
	}
	c.mu.Unlock()
	if len(eps) == 0 {
		return
	}
	payload := transport.MustEncode(pushMsg{From: c.space, Records: records})
	// Untracked on purpose: a push races shutdown harmlessly (the endpoint
	// just reports closed), and tying it to c.wg would race Stop's Wait.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		defer cancel()
		for _, ep := range eps {
			_, _ = c.ep.Request(ctx, ep, MsgFedPush, payload)
		}
	}()
}

func (c *Center) handleDigest(msg transport.Message) ([]byte, error) {
	var d digestMsg
	if err := transport.Decode(msg.Payload, &d); err != nil {
		return nil, err
	}
	return transport.Encode(digestReply{Records: c.missingFor(d.Digest)})
}

func (c *Center) handlePush(msg transport.Message) ([]byte, error) {
	var p pushMsg
	if err := transport.Decode(msg.Payload, &p); err != nil {
		return nil, err
	}
	for _, r := range p.Records {
		if _, err := c.apply(r); err != nil {
			return nil, err
		}
	}
	return nil, nil
}
