package bundle

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"mdagent/internal/app"
	"mdagent/internal/state"
)

// Wire layout:
//
//	[4B magic "MDAB"] [1B version]
//	repeated sections, each:
//	  [1B kind] [4B BE payload length] [payload] [4B BE CRC32(payload)]
//
// Section kinds 1 (manifest, gob) and 2 (initial state, one MDST wrap
// frame) are content; kind 3 (signature) must come last and carries the
// raw 32-byte Ed25519 public key followed by the 64-byte signature.
// Unknown section kinds are CRC-checked and skipped, so a future minor
// revision can add sections without breaking old readers — but they sit
// *inside* the signed span, so a reader that skips one still verifies
// it. The signature covers SHA-256 over every byte from the magic up to
// (excluding) the signature section's kind byte.

// magic identifies MDAgent application bundles.
var magic = [4]byte{'M', 'D', 'A', 'B'}

const headerLen = 5 // magic(4) + version(1)

// Section kinds.
const (
	secManifest byte = 1
	secState    byte = 2
	secSig      byte = 3
)

// sectionOverhead = kind(1) + length(4) + crc(4).
const sectionOverhead = 9

// sigBodyLen = ed25519 public key (32) + signature (64).
const sigBodyLen = ed25519.PublicKeySize + ed25519.SignatureSize

// appendSection frames one section onto buf.
func appendSection(buf []byte, kind byte, payload []byte) []byte {
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// Pack serializes, CRC-sections, and signs a bundle. The manifest must
// validate; when w is non-nil it becomes the initial-state section and
// must describe the manifest's app using only declared components.
func Pack(m Manifest, w *app.Wrap, key ed25519.PrivateKey) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("bundle: pack %s: bad private key length %d", m.App, len(key))
	}
	if w != nil {
		if err := checkWrap(&m, w); err != nil {
			return nil, err
		}
	}

	var manifestBody bytes.Buffer
	if err := gob.NewEncoder(&manifestBody).Encode(&m); err != nil {
		return nil, fmt.Errorf("bundle: pack %s: encode manifest: %w", m.App, err)
	}

	buf := make([]byte, 0, headerLen+2*sectionOverhead+manifestBody.Len())
	buf = append(buf, magic[:]...)
	buf = append(buf, Version)
	buf = appendSection(buf, secManifest, manifestBody.Bytes())
	if w != nil {
		frame, err := state.EncodeWrap(*w)
		if err != nil {
			return nil, fmt.Errorf("bundle: pack %s: %w", m.App, err)
		}
		buf = appendSection(buf, secState, frame)
	}

	digest := sha256.Sum256(buf)
	sig := make([]byte, 0, sigBodyLen)
	sig = append(sig, key.Public().(ed25519.PublicKey)...)
	sig = append(sig, ed25519.Sign(key, digest[:])...)
	return appendSection(buf, secSig, sig), nil
}

// section is one parsed wire section.
type section struct {
	kind    byte
	payload []byte
	// start is the offset of the section's kind byte in the raw bundle
	// — the signature's digest span ends at the signature section's
	// start.
	start int
}

// parseSections validates the header and walks the section chain,
// CRC-checking every payload (including unknown kinds).
func parseSections(raw []byte) ([]section, error) {
	if len(raw) < headerLen || !bytes.Equal(raw[0:4], magic[:]) {
		return nil, fmt.Errorf("%w (%d bytes)", ErrNotBundle, len(raw))
	}
	if v := raw[4]; v == 0 || v > Version {
		return nil, fmt.Errorf("%w: bundle v%d, codec v%d", ErrVersion, raw[4], Version)
	}
	var secs []section
	off := headerLen
	for off < len(raw) {
		if len(raw)-off < sectionOverhead {
			return nil, fmt.Errorf("%w: truncated section header at offset %d", ErrCorrupt, off)
		}
		kind := raw[off]
		n := int(binary.BigEndian.Uint32(raw[off+1 : off+5]))
		if n > len(raw)-off-sectionOverhead {
			return nil, fmt.Errorf("%w: section %d claims %d bytes, %d remain",
				ErrCorrupt, kind, n, len(raw)-off-sectionOverhead)
		}
		payload := raw[off+5 : off+5+n]
		sum := binary.BigEndian.Uint32(raw[off+5+n : off+sectionOverhead+n])
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, fmt.Errorf("%w: section %d crc %08x, header %08x", ErrCorrupt, kind, got, sum)
		}
		secs = append(secs, section{kind: kind, payload: payload, start: off})
		off += sectionOverhead + n
	}
	return secs, nil
}

// Inspect parses a bundle and verifies its signature against the
// embedded public key — integrity without a trust decision. Use Open
// before instantiating; Inspect is for tooling (mdctl bundle inspect)
// and for naming a bundle before a push.
func Inspect(raw []byte) (*Bundle, error) {
	return decode(raw, nil, false)
}

// Open parses a bundle, verifies its signature, and requires the
// signing key to be in the trusted set. An empty trusted set refuses
// every bundle — trust is opt-in, never default-open.
func Open(raw []byte, trusted []ed25519.PublicKey) (*Bundle, error) {
	return decode(raw, trusted, true)
}

func decode(raw []byte, trusted []ed25519.PublicKey, checkTrust bool) (*Bundle, error) {
	secs, err := parseSections(raw)
	if err != nil {
		return nil, err
	}

	var manifestSec, stateSec, sigSec *section
	for i := range secs {
		s := &secs[i]
		switch s.kind {
		case secManifest:
			if manifestSec != nil {
				return nil, fmt.Errorf("%w: duplicate manifest section", ErrCorrupt)
			}
			manifestSec = s
		case secState:
			if stateSec != nil {
				return nil, fmt.Errorf("%w: duplicate state section", ErrCorrupt)
			}
			stateSec = s
		case secSig:
			if sigSec != nil {
				return nil, fmt.Errorf("%w: duplicate signature section", ErrCorrupt)
			}
			sigSec = s
		default:
			// Unknown kinds were CRC-checked by parseSections and sit
			// inside the signed span; skip them.
		}
	}
	if sigSec == nil {
		return nil, fmt.Errorf("%w: no signature section", ErrUnsigned)
	}
	if sigSec != &secs[len(secs)-1] {
		return nil, fmt.Errorf("%w: signature section is not last", ErrCorrupt)
	}
	if manifestSec == nil {
		return nil, fmt.Errorf("%w: no manifest section", ErrCorrupt)
	}
	if len(sigSec.payload) != sigBodyLen {
		return nil, fmt.Errorf("%w: signature section is %d bytes, want %d",
			ErrCorrupt, len(sigSec.payload), sigBodyLen)
	}

	pub := ed25519.PublicKey(append([]byte(nil), sigSec.payload[:ed25519.PublicKeySize]...))
	sig := sigSec.payload[ed25519.PublicKeySize:]
	digest := sha256.Sum256(raw[:sigSec.start])
	if !ed25519.Verify(pub, digest[:], sig) {
		return nil, fmt.Errorf("%w: key %s", ErrBadSignature, FormatPublicKey(pub))
	}
	if checkTrust && !keyTrusted(pub, trusted) {
		return nil, fmt.Errorf("%w: key %s", ErrUntrustedKey, FormatPublicKey(pub))
	}

	b := &Bundle{Key: pub}
	if err := gob.NewDecoder(bytes.NewReader(manifestSec.payload)).Decode(&b.Manifest); err != nil {
		return nil, fmt.Errorf("%w: decode manifest: %v", ErrCorrupt, err)
	}
	if err := b.Manifest.Validate(); err != nil {
		return nil, err
	}
	if stateSec != nil {
		w, err := state.DecodeWrap(stateSec.payload)
		if err != nil {
			return nil, fmt.Errorf("%w: state frame: %v", ErrCorrupt, err)
		}
		if err := checkWrap(&b.Manifest, &w); err != nil {
			return nil, err
		}
		b.State = &w
	}
	return b, nil
}

// checkWrap enforces manifest/state coherence: the wrap must belong to
// the manifest's app and carry only declared components, with matching
// kinds.
func checkWrap(m *Manifest, w *app.Wrap) error {
	if w.App != m.App {
		return fmt.Errorf("%w: state wrap is for %q, manifest for %q", ErrCorrupt, w.App, m.App)
	}
	for name := range w.Components {
		kind, ok := m.Component(name)
		if !ok {
			return fmt.Errorf("%w: state wrap carries undeclared component %q", ErrCorrupt, name)
		}
		if wk, ok := w.Kinds[name]; ok && wk != kind {
			return fmt.Errorf("%w: component %q is %s in the wrap, %s in the manifest",
				ErrCorrupt, name, wk, kind)
		}
	}
	return nil
}

func keyTrusted(pub ed25519.PublicKey, trusted []ed25519.PublicKey) bool {
	for _, t := range trusted {
		if bytes.Equal(pub, t) {
			return true
		}
	}
	return false
}
