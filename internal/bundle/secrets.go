package bundle

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// RefScheme prefixes every secret locator a manifest may carry.
const RefScheme = "ref://"

// Resolver resolves `ref://` secret locators on the installing host.
// Two sources exist:
//
//	ref://env/NAME  — the NAME environment variable
//	ref://file/KEY  — the KEY entry of the host's -secrets-file
//
// The zero Resolver resolves env references from the real process
// environment and has no file entries; tests inject LookupEnv.
type Resolver struct {
	// LookupEnv overrides os.LookupEnv when non-nil.
	LookupEnv func(string) (string, bool)
	// File holds the parsed -secrets-file entries.
	File map[string]string
}

// LoadSecretsFile parses a key=value secrets file (one entry per line;
// blank lines and #-comments ignored) into a Resolver.
func LoadSecretsFile(path string) (Resolver, error) {
	f, err := os.Open(path)
	if err != nil {
		return Resolver{}, fmt.Errorf("bundle: secrets file: %w", err)
	}
	defer f.Close()
	entries := make(map[string]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, val, ok := strings.Cut(text, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return Resolver{}, fmt.Errorf("bundle: secrets file %s:%d: want key=value", path, line)
		}
		entries[key] = strings.TrimSpace(val)
	}
	if err := sc.Err(); err != nil {
		return Resolver{}, fmt.Errorf("bundle: secrets file %s: %w", path, err)
	}
	return Resolver{File: entries}, nil
}

// Resolve maps one locator to its secret value. Failures wrap
// ErrSecret, which crosses the wire typed, and the error never echoes a
// resolved value — only the locator.
func (r Resolver) Resolve(ref string) (string, error) {
	rest, ok := strings.CutPrefix(ref, RefScheme)
	if !ok {
		return "", fmt.Errorf("%w: %q is not a %s locator", ErrSecret, ref, RefScheme)
	}
	source, name, ok := strings.Cut(rest, "/")
	if !ok || name == "" {
		return "", fmt.Errorf("%w: malformed locator %q", ErrSecret, ref)
	}
	switch source {
	case "env":
		lookup := r.LookupEnv
		if lookup == nil {
			lookup = os.LookupEnv
		}
		v, found := lookup(name)
		if !found {
			return "", fmt.Errorf("%w: environment variable %s is not set", ErrSecret, name)
		}
		return v, nil
	case "file":
		v, found := r.File[name]
		if !found {
			return "", fmt.Errorf("%w: secrets file has no entry %q", ErrSecret, name)
		}
		return v, nil
	default:
		return "", fmt.Errorf("%w: unknown source %q in %q", ErrSecret, source, ref)
	}
}

// ResolveAll resolves every manifest secret reference, failing on the
// first locator the host cannot satisfy — instantiation is all-or-
// nothing, never a partially-configured instance.
func (r Resolver) ResolveAll(refs []SecretRef) (map[string]string, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	out := make(map[string]string, len(refs))
	for _, ref := range refs {
		v, err := r.Resolve(ref.Ref)
		if err != nil {
			return nil, fmt.Errorf("secret %q: %w", ref.Key, err)
		}
		out[ref.Key] = v
	}
	return out, nil
}
