package bundle

import (
	"fmt"

	"mdagent/internal/app"
	"mdagent/internal/owl"
	"mdagent/internal/rdf"
)

// Instantiate turns an opened bundle into an application factory — the
// same func(host) *app.Application shape Engine.InstallFactory takes
// for compiled-in apps, so a bundled app is indistinguishable from a
// native one downstream (run, migrate, replicate, failover).
//
// Secrets are resolved once, eagerly, before the factory is returned:
// a host that cannot satisfy every reference refuses the install with
// ErrSecret instead of minting instances that fail later. The factory
// itself cannot return an error (the Engine's contract), so Instantiate
// also dry-runs one full assembly to surface state-restore failures at
// install time.
func Instantiate(b *Bundle, resolver Resolver) (func(host string) *app.Application, error) {
	if err := b.Manifest.Validate(); err != nil {
		return nil, err
	}
	secrets, err := resolver.ResolveAll(b.Manifest.Secrets)
	if err != nil {
		return nil, fmt.Errorf("bundle: instantiate %s: %w", b.Manifest.App, err)
	}

	build := func(host string) (*app.Application, error) {
		m := &b.Manifest
		a := app.New(m.App, host, m.Description)
		for _, spec := range m.Components {
			var c app.Component
			if spec.Kind == app.KindState {
				c = app.NewState(spec.Name)
			} else {
				c = app.NewBlob(spec.Name, spec.Kind, nil)
			}
			if err := a.AddComponent(c); err != nil {
				return nil, err
			}
		}
		for _, ref := range m.Resources {
			a.BindResource(owl.Resource{
				ID:            ref,
				Class:         rdf.IMCL("Resource"),
				Substitutable: true,
				Host:          host,
			})
		}
		profile := m.Profile
		if b.State != nil {
			if err := a.Unwrap(*b.State); err != nil {
				return nil, err
			}
			// Unwrap installed the wrap's profile; it wins over the
			// manifest default when it names a user.
			if p := a.Profile(); p.User != "" || len(p.Preferences) != 0 {
				profile = p
			}
		}
		// Overlay resolved secrets onto a per-instance copy of the
		// preferences — instances must never share (or retain a
		// reference into) the manifest's map.
		prefs := make(map[string]string, len(profile.Preferences)+len(secrets))
		for k, v := range profile.Preferences {
			prefs[k] = v
		}
		for k, v := range secrets {
			prefs[k] = v
		}
		a.SetProfile(app.UserProfile{User: profile.User, Preferences: prefs})
		return a, nil
	}

	// Dry-run: fail at install time, not first run.
	if _, err := build("bundle-dry-run"); err != nil {
		return nil, fmt.Errorf("%w: instantiate %s: %v", ErrCorrupt, b.Manifest.App, err)
	}

	return func(host string) *app.Application {
		a, err := build(host)
		if err != nil {
			// The dry-run proved the bundle assembles; a failure here
			// would be a programming error, not input.
			panic(fmt.Sprintf("bundle: factory %s: %v", b.Manifest.App, err))
		}
		return a
	}, nil
}
