package bundle

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"fmt"

	"mdagent/internal/app"
)

// Keys are plain Ed25519 pairs, carried as hex on the command line and
// in key files: the 32-byte public key (64 hex chars) in -trust-key
// flags, the 32-byte seed (64 hex chars) in signing-key files. Hex —
// not PEM — keeps the format greppable and diffable; there is no
// certificate machinery, just a flat trusted set per daemon.

// GenerateKey creates a fresh Ed25519 signing pair.
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("bundle: generate key: %w", err)
	}
	return pub, priv, nil
}

// FormatPublicKey renders a public key as lowercase hex.
func FormatPublicKey(pub ed25519.PublicKey) string {
	return hex.EncodeToString(pub)
}

// ParsePublicKey parses a hex public key (as printed by FormatPublicKey
// and passed to -trust-key).
func ParsePublicKey(s string) (ed25519.PublicKey, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bundle: parse public key: %w", err)
	}
	if len(b) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("bundle: public key is %d bytes, want %d", len(b), ed25519.PublicKeySize)
	}
	return ed25519.PublicKey(b), nil
}

// FormatPrivateKey renders a private key's 32-byte seed as hex — the
// content of a signing-key file.
func FormatPrivateKey(priv ed25519.PrivateKey) string {
	return hex.EncodeToString(priv.Seed())
}

// ParsePrivateKey parses a hex private key: either the 32-byte seed
// (FormatPrivateKey's output) or a full 64-byte expanded key.
func ParsePrivateKey(s string) (ed25519.PrivateKey, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bundle: parse private key: %w", err)
	}
	switch len(b) {
	case ed25519.SeedSize:
		return ed25519.NewKeyFromSeed(b), nil
	case ed25519.PrivateKeySize:
		return ed25519.PrivateKey(b), nil
	default:
		return nil, fmt.Errorf("bundle: private key is %d bytes, want %d or %d",
			len(b), ed25519.SeedSize, ed25519.PrivateKeySize)
	}
}

// ParseKind maps a spec kind string ("logic", "ui", "data", "state") —
// app.ComponentKind.String()'s vocabulary — back to the kind.
func ParseKind(s string) (app.ComponentKind, bool) {
	switch s {
	case "logic":
		return app.KindLogic, true
	case "ui":
		return app.KindUI, true
	case "data":
		return app.KindData, true
	case "state":
		return app.KindState, true
	default:
		return 0, false
	}
}
