package bundle

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"mdagent/internal/app"
	"mdagent/internal/transport"
	"mdagent/internal/wsdl"
)

func testManifest() Manifest {
	return Manifest{
		App: "bundled-notepad",
		Description: wsdl.Description{
			Name: "bundled-notepad",
			Services: []wsdl.Service{{
				Name: "notepad",
				Ports: []wsdl.Port{{
					Name:       "main",
					Operations: []wsdl.Operation{{Name: "edit"}},
				}},
			}},
		},
		Components: []ComponentSpec{
			{Name: "editor-logic", Kind: app.KindLogic},
			{Name: "document", Kind: app.KindData},
			{Name: "session", Kind: app.KindState},
		},
		Resources: []string{"sharedDisplay-1"},
		Profile:   app.UserProfile{User: "alice", Preferences: map[string]string{"handedness": "left"}},
		Secrets: []SecretRef{
			{Key: "api-token", Ref: "ref://env/NOTEPAD_TOKEN"},
			{Key: "sync-password", Ref: "ref://file/sync"},
		},
	}
}

// testWrap builds the initial-state frame a packed bundle carries: a
// real application's WrapComponents output, so the test exercises the
// same path mdctl bundle pack does.
func testWrap(t *testing.T, m Manifest) *app.Wrap {
	t.Helper()
	a := app.New(m.App, "packer", m.Description)
	logic := app.NewBlob("editor-logic", app.KindLogic, []byte("logic-bytes"))
	doc := app.NewBlob("document", app.KindData, []byte("dear diary"))
	sess := app.NewState("session")
	sess.Set("cursor", "42")
	sess.Set("mode", "insert")
	for _, c := range []app.Component{logic, doc, sess} {
		if err := a.AddComponent(c); err != nil {
			t.Fatal(err)
		}
	}
	w, err := a.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &w
}

func testResolver() Resolver {
	return Resolver{
		LookupEnv: func(name string) (string, bool) {
			if name == "NOTEPAD_TOKEN" {
				return "tok-123", true
			}
			return "", false
		},
		File: map[string]string{"sync": "hunter2"},
	}
}

func packTest(t *testing.T) ([]byte, ed25519.PublicKey) {
	t.Helper()
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest()
	raw, err := Pack(m, testWrap(t, m), priv)
	if err != nil {
		t.Fatal(err)
	}
	return raw, pub
}

func TestPackOpenInstantiateRoundTrip(t *testing.T) {
	raw, pub := packTest(t)

	b, err := Open(raw, []ed25519.PublicKey{pub})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if b.Manifest.App != "bundled-notepad" {
		t.Fatalf("manifest app = %q", b.Manifest.App)
	}
	if b.State == nil {
		t.Fatal("bundle lost its initial-state frame")
	}

	factory, err := Instantiate(b, testResolver())
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	a := factory("host-x")
	if a.Host() != "host-x" || a.Name() != "bundled-notepad" {
		t.Fatalf("instance = %s@%s", a.Name(), a.Host())
	}
	// Components match the manifest, in declared order.
	want := []string{"editor-logic", "document", "session"}
	got := a.Components()
	if len(got) != len(want) {
		t.Fatalf("components = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("components = %v, want %v", got, want)
		}
	}
	// Initial state restored value-correct.
	c, _ := a.Component("document")
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "dear diary" {
		t.Fatalf("document = %q", snap)
	}
	sess, _ := a.Component("session")
	if v, ok := sess.(*app.StateComponent).Get("cursor"); !ok || v != "42" {
		t.Fatalf("session cursor = %q, %v", v, ok)
	}
	// Secrets resolved into the profile, by reference only.
	p := a.Profile()
	if p.Preferences["api-token"] != "tok-123" || p.Preferences["sync-password"] != "hunter2" {
		t.Fatalf("secrets not resolved: %v", p.Preferences)
	}
	if p.Preferences["handedness"] != "left" {
		t.Fatalf("profile default lost: %v", p.Preferences)
	}
	// Instances must not share preference maps.
	b2 := factory("host-y")
	b2.Profile().Preferences["api-token"] = "mutated"
	if factory("host-z").Profile().Preferences["api-token"] != "tok-123" {
		t.Fatal("instances share a preferences map")
	}
	// The packed bundle itself never contains a secret value.
	for _, secret := range []string{"tok-123", "hunter2"} {
		if containsBytes(raw, []byte(secret)) {
			t.Fatalf("bundle bytes contain secret %q", secret)
		}
	}
}

func containsBytes(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestInspectWithoutTrust(t *testing.T) {
	raw, pub := packTest(t)
	b, err := Inspect(raw)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if FormatPublicKey(b.Key) != FormatPublicKey(pub) {
		t.Fatal("Inspect returned the wrong signing key")
	}
	// Open with no trusted keys must refuse — trust is opt-in.
	if _, err := Open(raw, nil); !errors.Is(err, ErrUntrustedKey) {
		t.Fatalf("Open with empty trust set: %v, want ErrUntrustedKey", err)
	}
}

// TestTamperRejection covers the ISSUE's four mandated tamper cases
// plus a CRC-repaired flip: every altered copy is refused with its
// typed sentinel before any state is touched.
func TestTamperRejection(t *testing.T) {
	raw, pub := packTest(t)
	trusted := []ed25519.PublicKey{pub}

	t.Run("flipped payload byte", func(t *testing.T) {
		cp := append([]byte(nil), raw...)
		cp[headerLen+sectionOverhead] ^= 0xff // inside the manifest payload
		if _, err := Open(cp, trusted); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("flipped byte with repaired crc", func(t *testing.T) {
		cp := append([]byte(nil), raw...)
		// Flip a manifest byte AND recompute the section CRC so the
		// integrity check passes — only the signature catches it.
		n := int(binary.BigEndian.Uint32(cp[headerLen+1 : headerLen+5]))
		payload := cp[headerLen+5 : headerLen+5+n]
		payload[0] ^= 0xff
		binary.BigEndian.PutUint32(cp[headerLen+5+n:headerLen+9+n], crc32.ChecksumIEEE(payload))
		if _, err := Open(cp, trusted); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("got %v, want ErrBadSignature", err)
		}
	})

	t.Run("wrong signing key", func(t *testing.T) {
		_, otherPriv, err := GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		m := testManifest()
		other, err := Pack(m, testWrap(t, m), otherPriv)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Open(other, trusted); !errors.Is(err, ErrUntrustedKey) {
			t.Fatalf("got %v, want ErrUntrustedKey", err)
		}
	})

	t.Run("truncated manifest", func(t *testing.T) {
		if _, err := Open(raw[:headerLen+sectionOverhead+4], trusted); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("future version byte", func(t *testing.T) {
		cp := append([]byte(nil), raw...)
		cp[4] = Version + 1
		if _, err := Open(cp, trusted); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})

	t.Run("not a bundle", func(t *testing.T) {
		if _, err := Open([]byte("MDST garbage"), trusted); !errors.Is(err, ErrNotBundle) {
			t.Fatalf("got %v, want ErrNotBundle", err)
		}
	})

	t.Run("signature stripped", func(t *testing.T) {
		// Cut the signature section off entirely: structurally valid
		// sections, no signature.
		cut := len(raw) - (sectionOverhead + sigBodyLen)
		if _, err := Open(raw[:cut], trusted); !errors.Is(err, ErrUnsigned) {
			t.Fatalf("got %v, want ErrUnsigned", err)
		}
	})
}

func TestSentinelsSurviveTheWire(t *testing.T) {
	for _, sentinel := range []error{
		ErrNotBundle, ErrVersion, ErrCorrupt, ErrUnsigned,
		ErrBadSignature, ErrUntrustedKey, ErrSecret,
	} {
		remote := &transport.RemoteError{Endpoint: "host-b", Msg: "install: " + sentinel.Error()}
		if !errors.Is(remote, sentinel) {
			t.Fatalf("%v does not survive the wire", sentinel)
		}
	}
}

func TestStateWrapMustMatchManifest(t *testing.T) {
	_, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest()

	w := testWrap(t, m)
	w.App = "some-other-app"
	if _, err := Pack(m, w, priv); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign wrap: %v, want ErrCorrupt", err)
	}

	w2 := testWrap(t, m)
	w2.Components["smuggled"] = []byte("x")
	w2.Kinds["smuggled"] = app.KindData
	if _, err := Pack(m, w2, priv); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("undeclared component: %v, want ErrCorrupt", err)
	}
}

func TestSecretResolution(t *testing.T) {
	r := testResolver()
	if v, err := r.Resolve("ref://env/NOTEPAD_TOKEN"); err != nil || v != "tok-123" {
		t.Fatalf("env resolve: %q, %v", v, err)
	}
	if v, err := r.Resolve("ref://file/sync"); err != nil || v != "hunter2" {
		t.Fatalf("file resolve: %q, %v", v, err)
	}
	for _, bad := range []string{
		"ref://env/MISSING", "ref://file/missing", "ref://vault/x", "env/NOPE", "ref://env/",
	} {
		if _, err := r.Resolve(bad); !errors.Is(err, ErrSecret) {
			t.Fatalf("Resolve(%q): %v, want ErrSecret", bad, err)
		}
	}
}

func TestInstantiateFailsEagerlyOnMissingSecret(t *testing.T) {
	raw, pub := packTest(t)
	b, err := Open(raw, []ed25519.PublicKey{pub})
	if err != nil {
		t.Fatal(err)
	}
	// A resolver with no sources cannot satisfy the manifest's refs.
	empty := Resolver{LookupEnv: func(string) (string, bool) { return "", false }}
	if _, err := Instantiate(b, empty); !errors.Is(err, ErrSecret) {
		t.Fatalf("Instantiate: %v, want ErrSecret", err)
	}
}

func TestKeyHexRoundTrip(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := ParsePublicKey(FormatPublicKey(pub))
	if err != nil || FormatPublicKey(pub2) != FormatPublicKey(pub) {
		t.Fatalf("public key round trip: %v", err)
	}
	priv2, err := ParsePrivateKey(FormatPrivateKey(priv))
	if err != nil || !priv2.Equal(priv) {
		t.Fatalf("private key round trip: %v", err)
	}
	if _, err := ParsePublicKey("zz"); err == nil {
		t.Fatal("ParsePublicKey accepted junk")
	}
}

func TestUnknownSectionIsSkippedButSigned(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest()
	m.Secrets = nil

	// Hand-build a bundle with an extra (future) section kind between
	// manifest and signature, signed over as usual.
	var manifestBody []byte
	{
		packed, err := Pack(m, nil, priv)
		if err != nil {
			t.Fatal(err)
		}
		secs, err := parseSections(packed)
		if err != nil {
			t.Fatal(err)
		}
		manifestBody = append([]byte(nil), secs[0].payload...)
	}
	buf := append([]byte(nil), magic[:]...)
	buf = append(buf, Version)
	buf = appendSection(buf, secManifest, manifestBody)
	buf = appendSection(buf, 9, []byte("future extension"))
	digest := sha256.Sum256(buf)
	sig := append(append([]byte(nil), priv.Public().(ed25519.PublicKey)...), ed25519.Sign(priv, digest[:])...)
	buf = appendSection(buf, secSig, sig)

	b, err := Open(buf, []ed25519.PublicKey{pub})
	if err != nil {
		t.Fatalf("Open with unknown section: %v", err)
	}
	if b.Manifest.App != m.App {
		t.Fatalf("manifest app = %q", b.Manifest.App)
	}

	// Tampering with the unknown section (CRC repaired) still breaks
	// the signature — skipped is not unsigned.
	idx := bytes.Index(buf, []byte("future extension"))
	if idx < 0 {
		t.Fatal("unknown section payload not found")
	}
	cp := append([]byte(nil), buf...)
	cp[idx] ^= 0xff
	binary.BigEndian.PutUint32(cp[idx+len("future extension"):], crc32.ChecksumIEEE(cp[idx:idx+len("future extension")]))
	if _, err := Open(cp, []ed25519.PublicKey{pub}); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered unknown section: %v, want ErrBadSignature", err)
	}
}
