// Package bundle implements MDAgent's portable application bundles: a
// signed, secret-free distribution format that lets any host in the
// federation instantiate an application it has no compiled-in factory
// for. A bundle carries a manifest (app name, interface description,
// component catalog with kinds, OWL resource references, a user-profile
// default, and secret *references*), plus an optional initial-state
// frame in the internal/state MDST codec. Everything is CRC-sectioned
// behind a magic + version byte and Ed25519-signed over the canonical
// digest, so a tampered or unsigned bundle is refused — with a typed
// sentinel that survives the wire — before any state is touched.
//
// Secrets are never carried in a bundle (per the HPRT bundle plan this
// reproduces): the manifest lists `ref://` references which the
// *installing* host resolves at instantiation time from its environment
// or a -secrets-file. A bundle leaked in transit therefore leaks no
// credentials.
package bundle

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"strings"

	"mdagent/internal/app"
	"mdagent/internal/transport"
	"mdagent/internal/wsdl"
)

// Version is the current bundle-format version. Decoders accept any
// version up to this one; a bundle stamped by a newer codec is refused
// with ErrVersion (never half-parsed).
const Version = 1

// Typed refusals. All of them are registered as cross-wire sentinels,
// so errors.Is keeps working when the refusal happens on a remote
// daemon and crosses back as a transport.RemoteError.
var (
	// ErrNotBundle marks bytes without the MDAB magic — not a bundle at
	// all (or one truncated inside the header).
	ErrNotBundle = errors.New("bundle: not a bundle")
	// ErrVersion marks a bundle written by a newer codec than this
	// build understands.
	ErrVersion = errors.New("bundle: unsupported bundle version")
	// ErrCorrupt marks a structurally damaged bundle: a truncated or
	// duplicated section, a section CRC mismatch, or a manifest/state
	// pair that contradicts itself.
	ErrCorrupt = errors.New("bundle: corrupt bundle")
	// ErrUnsigned marks a bundle with no signature section.
	ErrUnsigned = errors.New("bundle: bundle is not signed")
	// ErrBadSignature marks a bundle whose Ed25519 signature does not
	// verify over the canonical digest — content was altered after
	// signing (and re-CRC'd, or the CRC check would have fired first).
	ErrBadSignature = errors.New("bundle: signature does not verify")
	// ErrUntrustedKey marks a correctly signed bundle whose signing key
	// is not in the verifier's trusted set.
	ErrUntrustedKey = errors.New("bundle: signing key is not trusted")
	// ErrSecret marks a secret reference the installing host could not
	// resolve (unknown scheme, or the env var / secrets-file key is
	// absent).
	ErrSecret = errors.New("bundle: unresolved secret reference")
)

func init() {
	for _, err := range []error{
		ErrNotBundle, ErrVersion, ErrCorrupt, ErrUnsigned,
		ErrBadSignature, ErrUntrustedKey, ErrSecret,
	} {
		transport.RegisterWireSentinel(err)
	}
}

// ComponentSpec declares one component the installing host must
// assemble: a name and a kind from the existing catalog (logic, ui,
// data, state). State kinds instantiate as StateComponent; everything
// else as a BlobComponent, optionally filled by the initial-state frame.
type ComponentSpec struct {
	Name string
	Kind app.ComponentKind
}

// SecretRef is a secret carried by reference, never by value. Key names
// the profile preference the resolved value lands in; Ref is a
// `ref://env/NAME` or `ref://file/KEY` locator resolved by the
// installing host at instantiation time.
type SecretRef struct {
	Key string
	Ref string
}

// Manifest is the signed description of a portable application.
type Manifest struct {
	// App is the application name instances register under.
	App string
	// Description is the WSDL-like interface description registered at
	// the registry center, exactly as a compiled-in factory would.
	Description wsdl.Description
	// Components lists what the host must assemble, in order.
	Components []ComponentSpec
	// Resources are OWL resource references (individual IDs in the imcl
	// namespace) the application binds at instantiation.
	Resources []string
	// Profile is the default user profile applied when the bundle
	// carries no initial state.
	Profile app.UserProfile
	// Secrets are references resolved at instantiation — see SecretRef.
	Secrets []SecretRef
}

// Validate checks the manifest is instantiable: a named app, a valid
// interface description, at least one uniquely-named component of a
// known kind, and well-formed secret references.
func (m *Manifest) Validate() error {
	if m.App == "" {
		return fmt.Errorf("%w: manifest has no app name", ErrCorrupt)
	}
	if err := m.Description.Validate(); err != nil {
		return fmt.Errorf("%w: manifest description: %v", ErrCorrupt, err)
	}
	if len(m.Components) == 0 {
		return fmt.Errorf("%w: manifest %s declares no components", ErrCorrupt, m.App)
	}
	seen := make(map[string]bool, len(m.Components))
	for _, c := range m.Components {
		if c.Name == "" {
			return fmt.Errorf("%w: manifest %s has an unnamed component", ErrCorrupt, m.App)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: manifest %s duplicates component %q", ErrCorrupt, m.App, c.Name)
		}
		seen[c.Name] = true
		switch c.Kind {
		case app.KindLogic, app.KindUI, app.KindData, app.KindState:
		default:
			return fmt.Errorf("%w: manifest %s component %q has invalid kind %d",
				ErrCorrupt, m.App, c.Name, c.Kind)
		}
	}
	for _, s := range m.Secrets {
		if s.Key == "" {
			return fmt.Errorf("%w: manifest %s has a secret with no key", ErrCorrupt, m.App)
		}
		if !strings.HasPrefix(s.Ref, RefScheme) {
			return fmt.Errorf("%w: manifest %s secret %q: reference %q is not a %s locator",
				ErrCorrupt, m.App, s.Key, s.Ref, RefScheme)
		}
	}
	return nil
}

// Component reports the declared kind of a component name.
func (m *Manifest) Component(name string) (app.ComponentKind, bool) {
	for _, c := range m.Components {
		if c.Name == name {
			return c.Kind, true
		}
	}
	return 0, false
}

// Bundle is a parsed, signature-checked bundle.
type Bundle struct {
	Manifest Manifest
	// State is the optional initial-state wrap (nil when the bundle
	// ships skeleton components only).
	State *app.Wrap
	// Key is the Ed25519 public key the bundle was signed with. Inspect
	// verifies the signature against it; Open additionally requires it
	// to be in the trusted set.
	Key ed25519.PublicKey
}
