package mdagent_test

import (
	"context"
	"testing"
	"time"

	"mdagent"
	"mdagent/internal/demoapps"
)

// TestPublicAPIEndToEnd drives a complete deployment exclusively through
// the exported facade: provision, run, migrate both ways, verify
// continuity — the contract the examples rely on.
func TestPublicAPIEndToEnd(t *testing.T) {
	mw, err := mdagent.New(mdagent.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()

	if err := mw.AddSpace("lab"); err != nil {
		t.Fatal(err)
	}
	dev := mdagent.DeviceProfile{ScreenWidth: 1024, ScreenHeight: 768, MemoryMB: 512, HasAudio: true, HasDisplay: true}
	if _, err := mw.AddHost("hostA", "lab", mdagent.Pentium4_1700(), dev, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab", mdagent.PentiumM_1600(), dev, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := mw.Hosts(); len(got) != 2 {
		t.Fatalf("Hosts = %v", got)
	}

	song := mdagent.GenerateFile("track", 2_000_000, 5)
	hostA, ok := mw.Host("hostA")
	if !ok {
		t.Fatal("hostA runtime missing")
	}
	hostA.Library.Add(song)
	player := demoapps.NewMediaPlayer("hostA", song)
	if err := mw.RunApp("hostA", player); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp("hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *mdagent.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := hostA.Engine.FollowMe(ctx, "smart-media-player", "hostB", mdagent.BindingAdaptive, mdagent.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 || rep.Suspend <= 0 || rep.Migrate <= 0 || rep.Resume <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	inst, host, ok := mw.FindApp("smart-media-player")
	if !ok || host != "hostB" {
		t.Fatalf("FindApp = %q, %v", host, ok)
	}
	if v, _ := inst.Coordinator().Get("track"); v != "track" {
		t.Fatalf("coordinator track = %q", v)
	}

	// Round trip via the Fig. 7 helper exposed on the facade.
	hostB, _ := mw.Host("hostB")
	rt, err := mdagent.MeasureRoundTrip(ctx, hostB.Engine, hostA.Engine, "smart-media-player", mdagent.BindingAdaptive, mdagent.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	trueRTT := rt.Out.Total() + rt.Back.Total()
	if diff := (rt.SkewCanceled() - trueRTT).Abs(); diff > time.Millisecond {
		t.Fatalf("skew cancellation error = %v", diff)
	}
	if _, host, _ := mw.FindApp("smart-media-player"); host != "hostB" {
		t.Fatalf("after round trip app at %q, want hostB", host)
	}
}

// TestPublicAPIAgentsFollowUser exercises the sensor-driven path through
// the facade.
func TestPublicAPIAgentsFollowUser(t *testing.T) {
	mw, err := mdagent.New(mdagent.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	if err := mw.AddSpace("lab"); err != nil {
		t.Fatal(err)
	}
	dev := mdagent.DeviceProfile{ScreenWidth: 1024, ScreenHeight: 768, MemoryMB: 512, HasAudio: true, HasDisplay: true}
	if _, err := mw.AddHost("hostA", "lab", mdagent.Pentium4_1700(), dev, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab", mdagent.PentiumM_1600(), dev, 0); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddRoom("r1", "hostA", mdagent.Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddRoom("r2", "hostB", mdagent.Point{X: 10, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddUser("alice", "b1", "r1"); err != nil {
		t.Fatal(err)
	}
	song := mdagent.GenerateFile("s", 1_000_000, 5)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)
	if err := mw.RunApp("hostA", demoapps.NewMediaPlayer("hostA", song)); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp("hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *mdagent.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		t.Fatal(err)
	}
	if err := mw.StartAgents(mdagent.DefaultPolicy("alice", "smart-media-player")); err != nil {
		t.Fatal(err)
	}
	script := mdagent.Script{Badge: "b1", Steps: []mdagent.Step{
		{Room: "r1", Dwell: time.Second},
		{Room: "r2", Dwell: 2 * time.Second},
	}}
	if err := mw.Walk(script); err != nil {
		t.Fatal(err)
	}
	if err := mw.WaitAppOn("smart-media-player", "hostB", 10*time.Second); err != nil {
		t.Fatal(err)
	}
}
