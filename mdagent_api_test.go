package mdagent_test

import (
	"context"
	"testing"
	"time"

	"mdagent"
	"mdagent/internal/demoapps"
)

// TestPublicAPIEndToEnd drives a complete deployment exclusively through
// the exported facade: provision, run, migrate both ways, verify
// continuity — the contract the examples rely on.
func TestPublicAPIEndToEnd(t *testing.T) {
	mw, err := mdagent.New(mdagent.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()

	if err := mw.AddSpace("lab"); err != nil {
		t.Fatal(err)
	}
	dev := mdagent.DeviceProfile{ScreenWidth: 1024, ScreenHeight: 768, MemoryMB: 512, HasAudio: true, HasDisplay: true}
	if _, err := mw.AddHost("hostA", "lab", mdagent.Pentium4_1700(), dev, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab", mdagent.PentiumM_1600(), dev, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := mw.Hosts(); len(got) != 2 {
		t.Fatalf("Hosts = %v", got)
	}

	song := mdagent.GenerateFile("track", 2_000_000, 5)
	hostA, ok := mw.Host("hostA")
	if !ok {
		t.Fatal("hostA runtime missing")
	}
	hostA.Library.Add(song)
	player := demoapps.NewMediaPlayer("hostA", song)
	if err := mw.RunApp(context.Background(), "hostA", player); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp(context.Background(), "hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *mdagent.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := hostA.Engine.FollowMe(ctx, "smart-media-player", "hostB", mdagent.BindingAdaptive, mdagent.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 || rep.Suspend <= 0 || rep.Migrate <= 0 || rep.Resume <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	inst, host, ok := mw.FindApp("smart-media-player")
	if !ok || host != "hostB" {
		t.Fatalf("FindApp = %q, %v", host, ok)
	}
	if v, _ := inst.Coordinator().Get("track"); v != "track" {
		t.Fatalf("coordinator track = %q", v)
	}

	// Round trip via the Fig. 7 helper exposed on the facade.
	hostB, _ := mw.Host("hostB")
	rt, err := mdagent.MeasureRoundTrip(ctx, hostB.Engine, hostA.Engine, "smart-media-player", mdagent.BindingAdaptive, mdagent.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	trueRTT := rt.Out.Total() + rt.Back.Total()
	if diff := (rt.SkewCanceled() - trueRTT).Abs(); diff > time.Millisecond {
		t.Fatalf("skew cancellation error = %v", diff)
	}
	if _, host, _ := mw.FindApp("smart-media-player"); host != "hostB" {
		t.Fatalf("after round trip app at %q, want hostB", host)
	}
}

// TestPublicAPIAgentsFollowUser exercises the sensor-driven path through
// the facade.
func TestPublicAPIAgentsFollowUser(t *testing.T) {
	mw, err := mdagent.New(mdagent.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	if err := mw.AddSpace("lab"); err != nil {
		t.Fatal(err)
	}
	dev := mdagent.DeviceProfile{ScreenWidth: 1024, ScreenHeight: 768, MemoryMB: 512, HasAudio: true, HasDisplay: true}
	if _, err := mw.AddHost("hostA", "lab", mdagent.Pentium4_1700(), dev, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab", mdagent.PentiumM_1600(), dev, 0); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddRoom("r1", "hostA", mdagent.Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddRoom("r2", "hostB", mdagent.Point{X: 10, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddUser("alice", "b1", "r1"); err != nil {
		t.Fatal(err)
	}
	song := mdagent.GenerateFile("s", 1_000_000, 5)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)
	if err := mw.RunApp(context.Background(), "hostA", demoapps.NewMediaPlayer("hostA", song)); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp(context.Background(), "hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *mdagent.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		t.Fatal(err)
	}
	if err := mw.StartAgents(context.Background(), mdagent.DefaultPolicy("alice", "smart-media-player")); err != nil {
		t.Fatal(err)
	}
	script := mdagent.Script{Badge: "b1", Steps: []mdagent.Step{
		{Room: "r1", Dwell: time.Second},
		{Room: "r2", Dwell: 2 * time.Second},
	}}
	if err := mw.Walk(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	if err := mw.WaitAppOn(context.Background(), "smart-media-player", "hostB", 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIClusterFailover drives the distribution layer through the
// exported facade: a two-space federated deployment survives its app
// host's crash, re-homing the app onto the survivor.
func TestPublicAPIClusterFailover(t *testing.T) {
	mw, err := mdagent.New(mdagent.Config{Seed: 9, Cluster: &mdagent.ClusterConfig{
		ProbeInterval:    2 * time.Millisecond,
		ProbeTimeout:     25 * time.Millisecond,
		SuspicionTimeout: 40 * time.Millisecond,
		SyncInterval:     5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()

	dev := mdagent.DeviceProfile{ScreenWidth: 1024, ScreenHeight: 768, MemoryMB: 512, HasAudio: true, HasDisplay: true}
	for i, host := range []string{"hostA", "hostB"} {
		space := []string{"east", "west"}[i]
		if err := mw.AddSpace(space); err != nil {
			t.Fatal(err)
		}
		if err := mw.AddGateway("gw-"+space, space, mdagent.Pentium4_1700()); err != nil {
			t.Fatal(err)
		}
		if _, err := mw.AddHost(host, space, mdagent.Pentium4_1700(), dev, 0); err != nil {
			t.Fatal(err)
		}
	}
	// A third member keeps a strict majority alive after one crash — a
	// lone survivor of a two-host cluster cannot tell a peer crash from
	// its own isolation, so it (correctly) refuses to act.
	if _, err := mw.AddHost("hostC", "west", mdagent.PentiumM_1600(), dev, 0); err != nil {
		t.Fatal(err)
	}
	song := mdagent.GenerateFile("track", 1_000_000, 5)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)
	if err := mw.RunApp(context.Background(), "hostA", demoapps.NewMediaPlayer("hostA", song)); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp(context.Background(), "hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *mdagent.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		t.Fatal(err)
	}

	// Wait until hostA's record has replicated to the west center — a
	// record that only ever lived on the crashed host's center cannot be
	// recovered (eventual consistency is not durability) — then crash.
	west, ok := mw.Cluster.Center("west")
	if !ok {
		t.Fatal("no west center")
	}
	nodeB, ok := mw.Cluster.Node("hostB")
	if !ok {
		t.Fatal("hostB has no membership node")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, found, _ := west.LookupApp(context.Background(), "smart-media-player", "hostA")
		if found && rec.Running && len(nodeB.AliveHosts()) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication/membership never converged (found=%v, alive=%v)", found, nodeB.AliveHosts())
		}
		time.Sleep(time.Millisecond)
	}
	if err := mw.Net.SetHostDown("hostA", true); err != nil {
		t.Fatal(err)
	}
	if err := mw.WaitAppOn(context.Background(), "smart-media-player", "hostB", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Failover may have been triggered by hostC's conviction while hostB
	// still holds "suspect" — poll until hostB's own detector catches up.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if m, _ := nodeB.Member("hostA"); m.State == mdagent.StateDead {
			break
		}
		if time.Now().After(deadline) {
			m, _ := nodeB.Member("hostA")
			t.Fatalf("hostA state on survivor = %v, want dead", m.State)
		}
		time.Sleep(time.Millisecond)
	}
	// The survivor's own space center holds the re-homed record.
	rec, found, err := west.LookupApp(context.Background(), "smart-media-player", "hostB")
	if err != nil || !found || !rec.Running {
		t.Fatalf("re-homed record: found=%v running=%v err=%v", found, rec.Running, err)
	}
}
