// Benchmarks regenerating every results figure of the paper's evaluation
// (§5). Durations are *simulated* 2002-era testbed time reported via
// b.ReportMetric (suspend-ms, migrate-ms, resume-ms, total-ms); the
// wall-clock ns/op of each benchmark is merely how fast the simulator
// replays them. Run:
//
//	go test -bench=. -benchmem
//
// cmd/mdbench prints the same series as paper-style tables.
package mdagent_test

import (
	"fmt"
	"testing"
	"time"

	"mdagent/internal/bench"
	"mdagent/internal/cluster"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/migrate"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/rdf"
	"mdagent/internal/registry"
	"mdagent/internal/rules"
	"mdagent/internal/store"
	"mdagent/internal/wsdl"
)

func reportPoint(b *testing.B, p bench.Point) {
	b.Helper()
	b.ReportMetric(float64(p.Suspend.Milliseconds()), "suspend-ms")
	b.ReportMetric(float64(p.Migrate.Milliseconds()), "migrate-ms")
	b.ReportMetric(float64(p.Resume.Milliseconds()), "resume-ms")
	b.ReportMetric(float64(p.Total.Milliseconds()), "total-ms")
	b.ReportMetric(float64(p.Bytes), "wrap-bytes")
}

// BenchmarkFig8AdaptiveBinding regenerates Fig. 8: follow-me with
// adaptive component binding across the paper's six file sizes. Expected
// shape: suspend and migrate flat, resume growing gently (< ~200-300 ms
// from 2.0M to 7.5M), total ~1 s.
func BenchmarkFig8AdaptiveBinding(b *testing.B) {
	for i, size := range bench.FileSizes {
		b.Run(bench.FileLabels[i], func(b *testing.B) {
			var last bench.Point
			for n := 0; n < b.N; n++ {
				p, err := bench.RunFollowMe(size, migrate.BindingAdaptive)
				if err != nil {
					b.Fatal(err)
				}
				last = p
			}
			reportPoint(b, last)
		})
	}
}

// BenchmarkFig9StaticBinding regenerates Fig. 9: the original static
// binding where data, logic and UI all migrate. Expected shape: migrate
// grows linearly with file size (10 Mbps-bound), dominating the total.
func BenchmarkFig9StaticBinding(b *testing.B) {
	for i, size := range bench.FileSizes {
		b.Run(bench.FileLabels[i], func(b *testing.B) {
			var last bench.Point
			for n := 0; n < b.N; n++ {
				p, err := bench.RunFollowMe(size, migrate.BindingStatic)
				if err != nil {
					b.Fatal(err)
				}
				last = p
			}
			reportPoint(b, last)
		})
	}
}

// BenchmarkFig10Comparative regenerates Fig. 10: adaptive vs static total
// cost at each size. Expected shape: adaptive wins everywhere, with the
// gap widening as file size grows.
func BenchmarkFig10Comparative(b *testing.B) {
	for i, size := range bench.FileSizes {
		b.Run(bench.FileLabels[i], func(b *testing.B) {
			var a, s bench.Point
			for n := 0; n < b.N; n++ {
				var err error
				a, err = bench.RunFollowMe(size, migrate.BindingAdaptive)
				if err != nil {
					b.Fatal(err)
				}
				s, err = bench.RunFollowMe(size, migrate.BindingStatic)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(a.Total.Milliseconds()), "adaptive-ms")
			b.ReportMetric(float64(s.Total.Milliseconds()), "static-ms")
			b.ReportMetric(float64(s.Total)/float64(a.Total), "static/adaptive")
		})
	}
}

// BenchmarkFig7SkewCancellation regenerates the Fig. 7 method check: the
// round-trip formula must cancel a 3 s clock offset exactly, while the
// naive cross-clock reading is off by that offset.
func BenchmarkFig7SkewCancellation(b *testing.B) {
	var res bench.Fig7Result
	for n := 0; n < b.N; n++ {
		var err error
		res, err = bench.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SkewCanceled.Milliseconds()), "skew-canceled-rtt-ms")
	b.ReportMetric(float64(res.TrueRTT.Milliseconds()), "true-rtt-ms")
	b.ReportMetric(float64((res.SkewCanceled - res.TrueRTT).Abs().Microseconds()), "formula-error-us")
	b.ReportMetric(float64((res.NaiveOneWay - res.TrueOneWay).Abs().Milliseconds()), "naive-error-ms")
}

// BenchmarkCloneDispatchFanout regenerates demo 2 at growing scale:
// cloning the lecture slideshow to N gateway-connected overflow rooms and
// synchronizing one slide change to all of them.
func BenchmarkCloneDispatchFanout(b *testing.B) {
	for _, rooms := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("rooms-%d", rooms), func(b *testing.B) {
			var res []bench.CloneResult
			for n := 0; n < b.N; n++ {
				var err error
				res, err = bench.RunCloneFanout(rooms, 3_000_000)
				if err != nil {
					b.Fatal(err)
				}
			}
			var totalClone time.Duration
			for _, r := range res {
				totalClone += r.Report.Total()
			}
			b.ReportMetric(float64(totalClone.Milliseconds())/float64(len(res)), "clone-ms-per-room")
			b.ReportMetric(float64(res[0].SyncRTT.Milliseconds()), "slide-sync-ms")
		})
	}
}

// BenchmarkChurnFailover measures the cluster layer's reaction to host
// churn in an N-space federated deployment: how long gossip takes to
// convict a killed host (convergence-ms; bounded below by the 40 ms
// suspicion window of bench.ChurnConfig) and how long failover then
// takes to re-home the host's application onto a survivor (failover-ms).
// These are wall-clock protocol timings, not simulated 2002-era
// durations — the failure detector runs on real timers.
//
// The "state" variants run with snapshot-state replication on
// (bench.ChurnStateConfig): replication-ms is how long a state write
// takes to reach every surviving center, failover-ms now includes the
// snapshot restore, and state-intact confirms the value-level check.
func BenchmarkChurnFailover(b *testing.B) {
	for _, spaces := range []int{3, 5, 8} {
		for _, withState := range []bool{false, true} {
			name := fmt.Sprintf("spaces-%d", spaces)
			cfg := bench.ChurnConfig()
			if withState {
				name += "-state"
				cfg = bench.ChurnStateConfig()
			}
			b.Run(name, func(b *testing.B) {
				var last bench.ChurnResult
				for n := 0; n < b.N; n++ {
					res, err := bench.RunChurn(spaces, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.Convergence.Milliseconds()), "convergence-ms")
				b.ReportMetric(float64(last.Failover.Milliseconds()), "failover-ms")
				b.ReportMetric(float64(last.Total.Milliseconds()), "total-ms")
				if withState {
					b.ReportMetric(float64(last.Replication.Milliseconds()), "replication-ms")
					b.ReportMetric(float64(last.SnapshotBytes), "snapshot-bytes")
					intact := 0.0
					if last.StateIntact {
						intact = 1
					}
					b.ReportMetric(intact, "state-intact")
				}
			})
		}
	}
}

// BenchmarkDurableWrite measures the per-write latency cost of each
// federation write concern (write-us / snap-us, healthy federation) and
// re-runs the kill-after-write audit: silent-loss must read 0 for one
// and quorum, while async shows the records a center crash silently
// eats. The experiment builds bare centers, so the numbers isolate the
// ack-carrying push path from gossip and middleware overhead.
func BenchmarkDurableWrite(b *testing.B) {
	for _, wc := range []cluster.WriteConcern{cluster.WriteAsync, cluster.WriteOne, cluster.WriteQuorum} {
		b.Run(string(wc), func(b *testing.B) {
			var last bench.DurabilityResult
			for n := 0; n < b.N; n++ {
				res, err := bench.RunDurability(3, 8, wc)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.HealthyLatency.Microseconds()), "write-us")
			b.ReportMetric(float64(last.SnapLatency.Microseconds()), "snap-us")
			b.ReportMetric(float64(last.DegradedLatency.Microseconds()), "degraded-us")
			b.ReportMetric(float64(last.SilentLoss), "silent-loss")
			b.ReportMetric(float64(last.Flagged), "flagged")
		})
	}
}

// BenchmarkFlapStability measures failure-detector robustness under a
// flapping link: false suspicions leaked past the indirect probes, false
// convictions (should be zero), and how fast membership settles once the
// flapping stops.
func BenchmarkFlapStability(b *testing.B) {
	for _, spaces := range []int{3, 5} {
		b.Run(fmt.Sprintf("spaces-%d", spaces), func(b *testing.B) {
			var last bench.FlapResult
			for n := 0; n < b.N; n++ {
				res, err := bench.RunFlap(spaces, bench.ChurnConfig(), 10*time.Millisecond, 10)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Suspicions), "suspicions")
			b.ReportMetric(float64(last.Convictions), "convictions")
			b.ReportMetric(float64(last.HealTime.Milliseconds()), "heal-ms")
		})
	}
}

// BenchmarkAblationMatching quantifies §3.3's claim that semantic
// matching beats syntax-based matching: destination resources are
// same-function printers under different names/subclasses.
func BenchmarkAblationMatching(b *testing.B) {
	onto := owl.New()
	onto.StandardResourceClasses()
	src := owl.Resource{ID: "src", Class: rdf.IMCL("Printer"), Substitutable: true, Host: "h1",
		Attrs: map[string]string{"name": "hp LaserJet 4"}}
	dest := make([]owl.Resource, 0, 64)
	for i := 0; i < 64; i++ {
		class := "Printer"
		if i%2 == 0 {
			class = "ColorPrinter"
		}
		dest = append(dest, owl.Resource{
			ID: fmt.Sprintf("d%d", i), Class: rdf.IMCL(class), Substitutable: true, Host: "h2",
			Attrs: map[string]string{"name": fmt.Sprintf("model-%d", i)},
		})
	}
	for _, mode := range []owl.MatchMode{owl.MatchSemantic, owl.MatchSyntactic} {
		b.Run(mode.String(), func(b *testing.B) {
			m := owl.NewMatcher(onto, mode)
			hits := 0
			for n := 0; n < b.N; n++ {
				hits = 0
				for _, d := range dest {
					if m.CanSubstitute(src, d) {
						hits++
					}
				}
			}
			b.ReportMetric(float64(hits)/float64(len(dest))*100, "hit-%")
		})
	}
}

// BenchmarkAblationRuleEngine measures forward-chaining fixpoint cost on
// transitive-closure workloads of growing size (the Fig. 6 Rule 1 shape).
func BenchmarkAblationRuleEngine(b *testing.B) {
	rule := `[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]`
	for _, chain := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("chain-%d", chain), func(b *testing.B) {
			rs := rules.MustParse(rule, rdf.NewNamespaces())
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				g := rdf.NewGraph()
				for i := 0; i+1 < chain; i++ {
					g.Add(rdf.T(rdf.IMCL(fmt.Sprintf("n%d", i)), rdf.IMCL("locatedIn"), rdf.IMCL(fmt.Sprintf("n%d", i+1))))
				}
				eng, err := rules.NewEngine(rs)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := eng.Infer(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRegistry measures lookup latency as the registered
// population grows.
func BenchmarkAblationRegistry(b *testing.B) {
	desc := wsdl.Description{
		Name: "app",
		Services: []wsdl.Service{{Name: "s", Ports: []wsdl.Port{{
			Name: "p", Operations: []wsdl.Operation{{Name: "op"}},
		}}}},
	}
	for _, population := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("apps-%d", population), func(b *testing.B) {
			reg, err := registry.New(store.OpenMemory())
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < population; i++ {
				d := desc
				d.Name = fmt.Sprintf("app-%d", i)
				if err := reg.RegisterApp(registry.AppRecord{
					Name: d.Name, Host: fmt.Sprintf("host-%d", i%10), Description: d,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if _, _, err := reg.LookupApp(fmt.Sprintf("app-%d", n%population), fmt.Sprintf("host-%d", (n%population)%10)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLinkSpeed asks whether adaptive binding's advantage
// survives faster networks: at 100 Mbps the static transfer penalty
// shrinks by 10x, yet adaptive stays ahead at 7.5 MB because the fixed
// platform costs dominate. On 11 Mbps WLAN the gap is 10 Mbps-like.
func BenchmarkAblationLinkSpeed(b *testing.B) {
	links := []struct {
		name string
		prof netsim.LinkProfile
	}{
		{"eth10", netsim.Ethernet10()},
		{"eth100", netsim.Ethernet100()},
		{"wlan11", netsim.WLAN11()},
	}
	for _, link := range links {
		b.Run(link.name, func(b *testing.B) {
			var a, s bench.Point
			for n := 0; n < b.N; n++ {
				var err error
				a, err = bench.RunFollowMeOnLink(7_500_000, migrate.BindingAdaptive, link.prof)
				if err != nil {
					b.Fatal(err)
				}
				s, err = bench.RunFollowMeOnLink(7_500_000, migrate.BindingStatic, link.prof)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(a.Total.Milliseconds()), "adaptive-ms")
			b.ReportMetric(float64(s.Total.Milliseconds()), "static-ms")
			b.ReportMetric(float64(s.Total)/float64(a.Total), "static/adaptive")
		})
	}
}

// BenchmarkAblationContextFanout measures pub/sub multicast cost as the
// subscriber population grows (the paper's multicast-to-listeners kernel).
func BenchmarkAblationContextFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("subs-%d", subs), func(b *testing.B) {
			k := ctxkernel.NewKernel()
			sink := 0
			for i := 0; i < subs; i++ {
				k.Subscribe("user.*", func(ctxkernel.Event) { sink++ })
			}
			ev := ctxkernel.Event{
				Topic: ctxkernel.TopicUserLocation,
				Attrs: map[string]string{ctxkernel.AttrUser: "alice", ctxkernel.AttrRoom: "r1"},
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				k.Publish(ev)
			}
		})
	}
}

// BenchmarkMembersGossip runs the membership scale sweep at bench-smoke
// sizes: per-message gossip payload must stay flat as the cluster grows
// (bounded dissemination), join convergence ~O(log N) rounds.
func BenchmarkMembersGossip(b *testing.B) {
	for _, hosts := range []int{60, 120} {
		b.Run(fmt.Sprintf("hosts-%d", hosts), func(b *testing.B) {
			var last bench.MembersResult
			for n := 0; n < b.N; n++ {
				res, err := bench.RunMembers(hosts, bench.MembersConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.BytesPerMsg, "bytes/msg")
			b.ReportMetric(last.BytesPerHostSec, "bytes/host/s")
			b.ReportMetric(float64(last.JoinRounds), "join-rounds")
			b.ReportMetric(float64(last.FalseSuspects+last.FalseConvictions), "false-positives")
		})
	}
}
