// Clone-dispatch slideshow: the paper's second demo (§5). A lecture
// overflows one room; the slideshow clones itself through space gateways
// to two overflow rooms, carrying only the slides (each room already has
// the presentation application and a projector), then the speaker's
// controls drive every room through synchronization links.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mdagent"
	"mdagent/internal/app"
	"mdagent/internal/demoapps"
)

func main() {
	mw, err := mdagent.New(mdagent.Config{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer mw.Close()

	// Three spaces (different cyber domains), gateway-connected.
	projector := func(host string) mdagent.DeviceProfile {
		return mdagent.DeviceProfile{Host: host, ScreenWidth: 1280, ScreenHeight: 1024,
			MemoryMB: 512, HasDisplay: true}
	}
	rooms := []string{"roomHost1", "roomHost2"}
	if err := mw.AddSpace("main-space"); err != nil {
		log.Fatal(err)
	}
	if _, err := mw.AddHost("mainHost", "main-space", mdagent.Pentium4_1700(), projector("mainHost"), 0); err != nil {
		log.Fatal(err)
	}
	if err := mw.AddGateway("gw-main", "main-space", mdagent.Pentium4_1700()); err != nil {
		log.Fatal(err)
	}
	for i, host := range rooms {
		spaceName := fmt.Sprintf("overflow-space-%d", i+1)
		if err := mw.AddSpace(spaceName); err != nil {
			log.Fatal(err)
		}
		if _, err := mw.AddHost(host, spaceName, mdagent.PentiumM_1600(), projector(host), 0); err != nil {
			log.Fatal(err)
		}
		if err := mw.AddGateway("gw-"+spaceName, spaceName, mdagent.Pentium4_1700()); err != nil {
			log.Fatal(err)
		}
		// Meeting rooms have the presentation app + projector; the
		// slides are what's missing.
		if err := mw.InstallApp(context.Background(), host, "ubiquitous-slideshow", demoapps.SlideShowDesc(),
			demoapps.SlideShowSkeletonComponents(),
			func(h string) *app.Application { return demoapps.SlideShowSkeleton(h) }); err != nil {
			log.Fatal(err)
		}
		if err := mw.RegisterResource(demoapps.ProjectorResource("proj-"+host, host, "room-"+host)); err != nil {
			log.Fatal(err)
		}
	}

	// The speaker's master deck: 24 slides, ~3 MB.
	deck := mdagent.GenerateDeck("icdcs-talk", 24, 3_000_000, 9)
	show := demoapps.NewSlideShow("mainHost", deck)
	show.BindResource(demoapps.SlidesResource(deck, "mainHost"))
	if err := mw.RunApp(context.Background(), "mainHost", show); err != nil {
		log.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.SlidesResource(deck, "mainHost")); err != nil {
		log.Fatal(err)
	}

	// Clone to each overflow room.
	mainRt, _ := mw.Host("mainHost")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	clones := make([]*mdagent.Application, 0, len(rooms))
	for i, host := range rooms {
		name := fmt.Sprintf("slideshow@room%d", i+1)
		rep, err := mainRt.Engine.CloneDispatch(ctx, "ubiquitous-slideshow", host, name, mdagent.MatchSemantic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cloned to %s: %d bytes (slides) in %v, inter-space=%v, sync link up\n",
			host, rep.BytesMoved, rep.Total(), rep.InterSpace)
		rt, _ := mw.Host(host)
		clone, _ := rt.Engine.App(name)
		clones = append(clones, clone)
	}

	// The speaker advances slides; every room follows.
	fmt.Println("\nspeaker advances through slides 2..4:")
	for slide := 2; slide <= 4; slide++ {
		show.Coordinator().Set("slide", fmt.Sprint(slide))
		for i, clone := range clones {
			waitSlide(clone, fmt.Sprint(slide))
			v, _ := clone.Coordinator().Get("slide")
			fmt.Printf("  room %d now shows slide %s\n", i+1, v)
		}
	}

	// A room asks a question — the annotation flows back to the speaker.
	clones[0].Coordinator().Set("annotation", "question from overflow room 1")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := show.Coordinator().Get("annotation"); v != "" {
			fmt.Printf("\nspeaker sees: %q\n", v)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("annotation never reached the speaker")
		}
		time.Sleep(time.Millisecond)
	}
}

func waitSlide(clone *mdagent.Application, want string) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := clone.Coordinator().Get("slide"); v == want {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("clone never reached slide %s", want)
		}
		time.Sleep(time.Millisecond)
	}
}
