// Follow-me player: the paper's first demo application (§5) end to end.
// Alice wears Cricket badge-1 and walks office821 -> corridor ->
// office822. The sensor field reports noisy distances, fusion derives her
// location, the context kernel multicasts the events, the autonomous
// agent reasons (move rule with the 1000 ms network guard) and orders the
// mobile agent, and the player follows her — music data staying behind,
// bound by URL to the origin host, exactly as the paper measures in
// Fig. 8.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mdagent"
	"mdagent/internal/app"
	"mdagent/internal/demoapps"
)

func main() {
	mw, err := mdagent.New(mdagent.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	defer mw.Close()

	// Environment: one space, two hosts, three rooms.
	if err := mw.AddSpace("lab-space"); err != nil {
		log.Fatal(err)
	}
	desktop := func(host string) mdagent.DeviceProfile {
		return mdagent.DeviceProfile{Host: host, ScreenWidth: 1024, ScreenHeight: 768,
			MemoryMB: 512, HasAudio: true, HasDisplay: true}
	}
	if _, err := mw.AddHost("hostA", "lab-space", mdagent.Pentium4_1700(), desktop("hostA"), 0); err != nil {
		log.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab-space", mdagent.PentiumM_1600(), desktop("hostB"), 0); err != nil {
		log.Fatal(err)
	}
	if err := mw.AddRoom("office821", "hostA", mdagent.Point{X: 0, Y: 0}); err != nil {
		log.Fatal(err)
	}
	if err := mw.AddRoom("corridor", "hostA", mdagent.Point{X: 6, Y: 5}); err != nil {
		log.Fatal(err)
	}
	if err := mw.AddRoom("office822", "hostB", mdagent.Point{X: 12, Y: 0}); err != nil {
		log.Fatal(err)
	}
	if err := mw.AddUser("alice", "badge-1", "office821"); err != nil {
		log.Fatal(err)
	}

	// The player runs on hostA; hostB has the UI skeleton.
	song := mdagent.GenerateFile("blue-danube", 4_300_000, 3)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)
	player := demoapps.NewMediaPlayer("hostA", song)
	player.SetProfile(mdagent.UserProfile{User: "alice", Preferences: map[string]string{"handedness": "left"}})
	if err := mw.RunApp(context.Background(), "hostA", player); err != nil {
		log.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		log.Fatal(err)
	}
	if err := mw.InstallApp(context.Background(), "hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		log.Fatal(err)
	}

	// Watch the agent layer's decisions.
	mw.Kernel.Subscribe(mdagent.TopicMigrated, func(ev mdagent.Event) {
		fmt.Printf("[agents] %s migrated to %s (suspend %sms, migrate %sms, resume %sms)\n",
			ev.Attr("app"), ev.Attr("dest"), ev.Attr("suspend_ms"), ev.Attr("migrate_ms"), ev.Attr("resume_ms"))
	})
	mw.Kernel.Subscribe(mdagent.TopicUserEntered, func(ev mdagent.Event) {
		fmt.Printf("[context] alice entered %s\n", ev.Attr("room"))
	})

	// Deploy the AA/MA pairs and let alice walk.
	if err := mw.StartAgents(context.Background(), mdagent.DefaultPolicy("alice", "smart-media-player")); err != nil {
		log.Fatal(err)
	}
	script := mdagent.Script{Badge: "badge-1", Steps: []mdagent.Step{
		{Room: "office821", Dwell: 2 * time.Second},
		{Room: "corridor", Dwell: 2 * time.Second},
		{Room: "office822", Dwell: 3 * time.Second},
	}}
	fmt.Println("alice starts walking (virtual time)...")
	if err := mw.Walk(context.Background(), script); err != nil {
		log.Fatal(err)
	}
	if err := mw.WaitAppOn(context.Background(), "smart-media-player", "hostB", 10*time.Second); err != nil {
		log.Fatal(err)
	}

	inst, host, _ := mw.FindApp("smart-media-player")
	track, _ := inst.Coordinator().Get("track")
	fmt.Printf("\nplayer followed alice to %s; track %q still loaded\n", host, track)
	for _, res := range inst.Resources() {
		if url := res.Attrs["url"]; url != "" {
			fmt.Printf("music left at origin, playing remotely via %s\n", url)
		}
	}
	if room, prob, ok := mw.Predictor.PredictNext("alice"); ok {
		fmt.Printf("predictor: alice's likely next room is %s (p=%.2f)\n", room, prob)
	}
}
