// Quickstart: the smallest complete MDAgent deployment. Two hosts on the
// paper's simulated 10 Mbps testbed, a music player on hostA with its
// UI-only skeleton installed on hostB, one follow-me migration driven
// through the versioned control plane (the same typed Client cmd/mdctl
// speaks to live TCP daemons), and the migrated event observed on a
// typed Watch stream.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mdagent"
	"mdagent/internal/app"
	"mdagent/internal/demoapps"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	mw, err := mdagent.New(mdagent.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer mw.Close()

	// --- Provision the environment: one space, two hosts. ---
	if err := mw.AddSpace("lab-space"); err != nil {
		log.Fatal(err)
	}
	desktop := func(host string) mdagent.DeviceProfile {
		return mdagent.DeviceProfile{
			Host: host, ScreenWidth: 1024, ScreenHeight: 768,
			MemoryMB: 512, HasAudio: true, HasDisplay: true,
		}
	}
	if _, err := mw.AddHost("hostA", "lab-space", mdagent.Pentium4_1700(), desktop("hostA"), 0); err != nil {
		log.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab-space", mdagent.PentiumM_1600(), desktop("hostB"), 0); err != nil {
		log.Fatal(err)
	}

	// --- Run the player on hostA; install its skeleton on hostB. ---
	song := mdagent.GenerateFile("blue-danube", 2_000_000, 7)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)
	player := demoapps.NewMediaPlayer("hostA", song)
	if err := mw.RunApp(ctx, "hostA", player); err != nil {
		log.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		log.Fatal(err)
	}
	if err := mw.InstallApp(ctx, "hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		log.Fatal(err)
	}

	// Some playback state that must survive the migration.
	st, _ := player.Component("playback-state")
	st.(*app.StateComponent).Set("positionMs", "93500")
	player.Coordinator().Set("track", song.Name)

	// --- Serve the control plane and connect the typed client. ---
	// Over TCP the daemons serve this same protocol on their listen
	// addresses (try `mdctl -server <addr> ps` / `watch`); in-process it
	// binds to a fabric endpoint.
	srvEp, err := mw.Fabric.Attach("ctl-server", "")
	if err != nil {
		log.Fatal(err)
	}
	defer mw.ServeControl(srvEp).Close()
	cliEp, err := mw.Fabric.Attach("operator", "")
	if err != nil {
		log.Fatal(err)
	}
	cli := mdagent.NewControlClient(cliEp, "ctl-server")

	// Stream typed app events while we operate.
	events, err := cli.Watch(ctx, "app.*")
	if err != nil {
		log.Fatal(err)
	}

	// --- Migrate through the control plane (follow-me, adaptive). ---
	res, err := cli.Migrate(ctx, mdagent.MigrateRequest{App: "smart-media-player", To: "hostB"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("follow-me migration complete (simulated 2002-era testbed time):")
	fmt.Printf("  suspend: %8v\n", res.Suspend)
	fmt.Printf("  migrate: %8v\n", res.Migrate)
	fmt.Printf("  resume:  %8v\n", res.Resume)
	fmt.Printf("  total:   %8v\n", res.Total())
	fmt.Printf("  carried: %v (%d bytes)\n", res.Carried, res.BytesMoved)

	// The typed migrated event arrives on the watch stream.
	for ev := range events {
		if m, ok := ev.Typed.(mdagent.MigratedEvent); ok {
			fmt.Printf("  event:   app.migrated %s -> %s (%d bytes)\n", m.App, m.Dest, m.Bytes)
			break
		}
	}

	// --- Inspect and verify continuity at the destination. ---
	apps, err := cli.Apps(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range apps {
		fmt.Printf("  record:  %s on %s running=%v\n", a.Name, a.Host, a.Running)
	}
	inst, host, _ := mw.FindApp("smart-media-player")
	pos, _ := inst.Component("playback-state")
	v, _ := pos.(*app.StateComponent).Get("positionMs")
	track, _ := inst.Coordinator().Get("track")
	fmt.Printf("\nplayer now on %s, track %q at position %s ms\n", host, track, v)
}
