// Quickstart: the smallest complete MDAgent deployment. Two hosts on the
// paper's simulated 10 Mbps testbed, a music player on hostA with its
// UI-only skeleton installed on hostB, and one explicit follow-me
// migration with the three-phase timing report (suspend / migrate /
// resume, as in the paper's §5 evaluation).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mdagent"
	"mdagent/internal/app"
	"mdagent/internal/demoapps"
)

func main() {
	mw, err := mdagent.New(mdagent.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer mw.Close()

	// --- Provision the environment: one space, two hosts. ---
	if err := mw.AddSpace("lab-space"); err != nil {
		log.Fatal(err)
	}
	desktop := func(host string) mdagent.DeviceProfile {
		return mdagent.DeviceProfile{
			Host: host, ScreenWidth: 1024, ScreenHeight: 768,
			MemoryMB: 512, HasAudio: true, HasDisplay: true,
		}
	}
	if _, err := mw.AddHost("hostA", "lab-space", mdagent.Pentium4_1700(), desktop("hostA"), 0); err != nil {
		log.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab-space", mdagent.PentiumM_1600(), desktop("hostB"), 0); err != nil {
		log.Fatal(err)
	}

	// --- Run the player on hostA; install its skeleton on hostB. ---
	song := mdagent.GenerateFile("blue-danube", 2_000_000, 7)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)
	player := demoapps.NewMediaPlayer("hostA", song)
	if err := mw.RunApp("hostA", player); err != nil {
		log.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		log.Fatal(err)
	}
	if err := mw.InstallApp("hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		log.Fatal(err)
	}

	// Some playback state that must survive the migration.
	st, _ := player.Component("playback-state")
	st.(*app.StateComponent).Set("positionMs", "93500")
	player.Coordinator().Set("track", song.Name)

	// --- Migrate (follow-me, adaptive component binding). ---
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := hostA.Engine.FollowMe(ctx, "smart-media-player", "hostB", mdagent.BindingAdaptive, mdagent.MatchSemantic)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("follow-me migration complete (simulated 2002-era testbed time):")
	fmt.Printf("  suspend: %8v\n", rep.Suspend)
	fmt.Printf("  migrate: %8v\n", rep.Migrate)
	fmt.Printf("  resume:  %8v\n", rep.Resume)
	fmt.Printf("  total:   %8v\n", rep.Total())
	fmt.Printf("  carried: %v (%d bytes)\n", rep.Carried, rep.BytesMoved)
	for _, p := range rep.Rebindings {
		fmt.Printf("  rebinding: %-10s %s\n", p.Action, p.Reason)
	}

	// --- Verify continuity at the destination. ---
	inst, host, _ := mw.FindApp("smart-media-player")
	pos, _ := inst.Component("playback-state")
	v, _ := pos.(*app.StateComponent).Get("positionMs")
	track, _ := inst.Coordinator().Get("track")
	fmt.Printf("\nplayer now on %s, track %q at position %s ms\n", host, track, v)
}
