// Follow-me instant messenger: session continuity with code-carrying
// migration. The destination host has NO messenger installation at all,
// so the mobile agent carries logic + UI + session state — the paper's
// "Otherwise, it will also carry the logics and user interface as well as
// the states" path — and the chat history survives the move.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"time"

	"mdagent"
	"mdagent/internal/app"
	"mdagent/internal/demoapps"
)

func main() {
	mw, err := mdagent.New(mdagent.Config{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer mw.Close()

	if err := mw.AddSpace("campus"); err != nil {
		log.Fatal(err)
	}
	dev := func(host string) mdagent.DeviceProfile {
		return mdagent.DeviceProfile{Host: host, ScreenWidth: 1024, ScreenHeight: 768,
			MemoryMB: 256, HasDisplay: true}
	}
	if _, err := mw.AddHost("dorm", "campus", mdagent.Pentium4_1700(), dev("dorm"), 0); err != nil {
		log.Fatal(err)
	}
	if _, err := mw.AddHost("library", "campus", mdagent.PentiumM_1600(), dev("library"), 0); err != nil {
		log.Fatal(err)
	}

	im := demoapps.NewMessenger("dorm", "carol")
	if err := mw.RunApp(context.Background(), "dorm", im); err != nil {
		log.Fatal(err)
	}
	for _, msg := range []string{
		"hey, heading to the library",
		"bring the ICDCS paper",
		"already have it open",
	} {
		if err := demoapps.MessengerSend(im, msg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("session on dorm host with 3 messages; library has NO messenger installed")

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	dorm, _ := mw.Host("dorm")
	rep, err := dorm.Engine.FollowMe(ctx, "followme-messenger", "library", mdagent.BindingAdaptive, mdagent.MatchSemantic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmigrated carrying %v (%d bytes) in %v — code travelled with the agent\n",
		rep.Carried, rep.BytesMoved, rep.Total())

	inst, host, _ := mw.FindApp("followme-messenger")
	st, _ := inst.Component("im-session")
	sc := st.(*app.StateComponent)
	countStr, _ := sc.Get("messageCount")
	n, _ := strconv.Atoi(countStr)
	fmt.Printf("\nsession restored on %s with %d messages:\n", host, n)
	for i := 0; i < n; i++ {
		msg, _ := sc.Get(fmt.Sprintf("msg-%03d", i))
		fmt.Printf("  %2d. %s\n", i+1, msg)
	}

	// The session keeps working at the destination.
	if err := demoapps.MessengerSend(inst, "made it — messenger followed me here"); err != nil {
		log.Fatal(err)
	}
	last, _ := inst.Coordinator().Get("lastMessage")
	fmt.Printf("\nnew message sent from %s: %q\n", host, last)
}
