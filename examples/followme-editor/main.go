// Follow-me editor: one of the paper's six demo applications. The editor
// carries its document (transferable data) as bob moves across three
// hosts; the destination installations already have the editor code, so
// adaptive binding ships only the document and the edit state — and the
// handheld hop shows the adaptor rescaling the presentation for a
// PDA-class screen.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mdagent"
	"mdagent/internal/app"
	"mdagent/internal/demoapps"
)

func main() {
	mw, err := mdagent.New(mdagent.Config{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	defer mw.Close()

	if err := mw.AddSpace("office-space"); err != nil {
		log.Fatal(err)
	}
	devices := map[string]mdagent.DeviceProfile{
		"deskA": {Host: "deskA", ScreenWidth: 1024, ScreenHeight: 768, MemoryMB: 512, HasDisplay: true},
		"deskB": {Host: "deskB", ScreenWidth: 1280, ScreenHeight: 1024, MemoryMB: 512, HasDisplay: true},
		"pda1":  {Host: "pda1", ScreenWidth: 320, ScreenHeight: 240, MemoryMB: 64, HasDisplay: true},
	}
	for host, dev := range devices {
		profile := mdagent.Pentium4_1700()
		if host == "pda1" {
			profile = mdagent.HostProfile{
				Name: "PDA-400MHz", SerializeMBps: 6, DeserializeMBps: 5,
				FixedSuspend: 120 * time.Millisecond, FixedResume: 250 * time.Millisecond, MemoryMB: 64,
			}
		}
		if _, err := mw.AddHost(host, "office-space", profile, dev, 0); err != nil {
			log.Fatal(err)
		}
	}

	// Editor code is installed everywhere; the document lives with bob.
	for _, host := range []string{"deskB", "pda1"} {
		if err := mw.InstallApp(context.Background(), host, "followme-editor", demoapps.EditorDesc(),
			demoapps.EditorSkeletonComponents(),
			func(h string) *app.Application { return demoapps.EditorSkeleton(h) }); err != nil {
			log.Fatal(err)
		}
	}

	document := "MDAgent reproduction notes\n" +
		"- adaptive binding ships only what the destination lacks\n" +
		"- the document follows the user, the code does not\n"
	editor := demoapps.NewEditor("deskA", document)
	editor.SetProfile(mdagent.UserProfile{User: "bob", Preferences: map[string]string{"handedness": "left"}})
	if err := mw.RunApp(context.Background(), "deskA", editor); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	hop := func(from, to string) {
		rt, _ := mw.Host(from)
		rep, err := rt.Engine.FollowMe(ctx, "followme-editor", to, mdagent.BindingAdaptive, mdagent.MatchSemantic)
		if err != nil {
			log.Fatal(err)
		}
		inst, _, _ := mw.FindApp("followme-editor")
		ui, _ := inst.Component("editor-ui")
		fmt.Printf("%s -> %s: carried %v (%d bytes) in %v; UI now %s, mirrored=%v\n",
			from, to, rep.Carried, rep.BytesMoved, rep.Total(),
			ui.(*mdagent.UIComponent).GeometryString(), ui.(*mdagent.UIComponent).Mirrored())
	}

	// Edit on deskA, then follow bob to deskB and on to the PDA.
	st, _ := editor.Component("edit-state")
	st.(*app.StateComponent).Set("cursor", "118")
	st.(*app.StateComponent).Set("dirty", "true")

	hop("deskA", "deskB")
	hop("deskB", "pda1")

	inst, host, _ := mw.FindApp("followme-editor")
	doc, _ := inst.Component("document")
	snap, err := doc.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	est, _ := inst.Component("edit-state")
	cursor, _ := est.(*app.StateComponent).Get("cursor")
	fmt.Printf("\neditor on %s, cursor at %s, document intact (%d bytes):\n%s",
		host, cursor, len(snap), string(snap))
}
