// Package mdagent is the public API of the MDAgent middleware — a Go
// reproduction of "A Middleware Support for Agent-Based Application
// Mobility in Pervasive Environments" (Zhou, Cao, Raychoudhury, Siebert,
// Lu; ICDCS 2007 Workshops).
//
// MDAgent migrates running applications between hosts in a pervasive
// environment. Autonomous agents watch context events (user location from
// simulated Cricket sensors, network conditions), reason over an OWL/RDF
// resource ontology with a Jena-style rule engine, and decide when, where
// and which application components to move; mobile agents wrap the chosen
// components and carry them. Two mobility modes are supported: follow-me
// (cut-paste) and clone-dispatch (copy-paste with synchronization links),
// and two binding designs: adaptive component binding (this paper) and
// static whole-application binding (the authors' earlier system, used as
// the evaluation baseline).
//
// A minimal deployment. Operation methods take a context.Context and
// honor cancellation; typed sentinel errors (ErrUnknownHost,
// ErrAppNotFound) satisfy errors.Is both in-process and across the
// control-plane wire:
//
//	mw, err := mdagent.New(mdagent.Config{})
//	// provision spaces, hosts, rooms, users ...
//	mw.AddSpace("lab")
//	mw.AddHost("hostA", "lab", mdagent.Pentium4_1700(), dev, 0)
//	mw.AddRoom("office821", "hostA", mdagent.Point{X: 0, Y: 0})
//	mw.AddUser("alice", "badge-1", "office821")
//	// run an application and let the agents follow the user
//	ctx := context.Background()
//	mw.RunApp(ctx, "hostA", player)
//	mw.StartAgents(ctx, mdagent.DefaultPolicy("alice", "smart-media-player"))
//	mw.Walk(ctx, script)
//	mw.WaitAppOn(ctx, "smart-media-player", "hostB", 10*time.Second)
//
// The same deployment is operable from outside through the versioned
// control plane: ServeControl binds it onto a transport endpoint, and a
// Client (or cmd/mdctl against the TCP daemons) can run, stop, migrate,
// inspect, and Watch typed events:
//
//	ep, _ := mw.Fabric.Attach("operator", "")
//	mw.ServeControl(ep)
//	cli := mdagent.NewControlClient(ep, "operator")
//	events, _ := cli.Watch(ctx, "cluster.*")
//	cli.Migrate(ctx, mdagent.MigrateRequest{App: "smart-media-player", To: "hostB"})
//
// See examples/ for complete programs and DESIGN.md for the architecture
// (§7 documents the control plane).
package mdagent

import (
	"mdagent/internal/agents"
	"mdagent/internal/app"
	"mdagent/internal/bundle"
	"mdagent/internal/cluster"
	"mdagent/internal/core"
	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/media"
	"mdagent/internal/migrate"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/sensor"
	"mdagent/internal/state"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// Deployment facade.
type (
	// Config parameterizes a Middleware deployment.
	Config = core.Config
	// Middleware is one MDAgent deployment (a whole pervasive environment).
	Middleware = core.Middleware
	// HostRuntime is everything MDAgent runs on one host.
	HostRuntime = core.HostRuntime
)

// New builds a deployment from cfg.
func New(cfg Config) (*Middleware, error) { return core.New(cfg) }

// Application model (paper Fig. 3).
type (
	// Application is one running application instance.
	Application = app.Application
	// Component is a migratable application part.
	Component = app.Component
	// ComponentKind classifies components (logic, UI, data, state).
	ComponentKind = app.ComponentKind
	// StateComponent is a small key-value state component.
	StateComponent = app.StateComponent
	// BlobComponent is an opaque payload component.
	BlobComponent = app.BlobComponent
	// UIComponent is an adaptable presentation.
	UIComponent = app.UIComponent
	// Coordinator is the observer-pattern state hub.
	Coordinator = app.Coordinator
	// StateChange is one observable state mutation.
	StateChange = app.StateChange
	// UserProfile carries per-user preferences.
	UserProfile = app.UserProfile
	// Adaptation is a device-adaptation plan.
	Adaptation = app.Adaptation
	// Wrap is the serialized bundle a mobile agent carries.
	Wrap = app.Wrap
)

// Component kinds.
const (
	KindLogic = app.KindLogic
	KindUI    = app.KindUI
	KindData  = app.KindData
	KindState = app.KindState
)

// NewApplication creates a running application instance.
func NewApplication(name, host string, desc Description) *Application {
	return app.New(name, host, desc)
}

// Component constructors.
var (
	NewBlob      = app.NewBlob
	NewSizedBlob = app.NewSizedBlob
	NewState     = app.NewState
	NewUI        = app.NewUI
)

// Mobility (paper §3.2, Fig. 1).
type (
	// Report is a migration outcome with the three-phase timing split.
	Report = migrate.Report
	// BindingMode selects adaptive vs static component binding.
	BindingMode = migrate.BindingMode
	// MobilityMode selects follow-me vs clone-dispatch.
	MobilityMode = migrate.Mode
	// CostProfile calibrates platform overheads.
	CostProfile = migrate.CostProfile
	// RoundTrip is the paper's Fig. 7 skew-canceling measurement.
	RoundTrip = migrate.RoundTrip
	// Engine is a host's migration engine.
	Engine = migrate.Engine
)

// Mobility constants.
const (
	BindingAdaptive = migrate.BindingAdaptive
	BindingStatic   = migrate.BindingStatic
	FollowMe        = migrate.FollowMe
	CloneDispatch   = migrate.CloneDispatch
)

// DefaultCosts returns the calibration used for the paper reproduction.
func DefaultCosts() CostProfile { return migrate.DefaultCosts() }

// MeasureRoundTrip performs the Fig. 7 two-leg measurement.
var MeasureRoundTrip = migrate.MeasureRoundTrip

// Distribution layer (beyond the paper: gossip membership, federated
// registry centers, failover re-homing). Enable it with
// Config{Cluster: &mdagent.ClusterConfig{}}; the deployment then runs
// one replicating registry center per smart space, a SWIM-style
// membership node per host, and automatically re-homes a dead host's
// applications onto the best survivor.
type (
	// ClusterConfig tunes gossip cadence, failure-detection windows and
	// federation anti-entropy.
	ClusterConfig = cluster.Config
	// Cluster is a deployment's distribution layer (Middleware.Cluster).
	Cluster = cluster.Cluster
	// ClusterMember is one host's entry in the gossip membership table.
	ClusterMember = cluster.Member
	// MemberState is a member's health (alive / suspect / dead).
	MemberState = cluster.State
	// RegistryCenter is one smart space's federated registry center.
	RegistryCenter = cluster.Center
	// WriteConcern selects federation write durability (async, one,
	// quorum): how many peer centers must synchronously acknowledge a
	// write before it returns (ClusterConfig.WriteConcern, overridable
	// per snapshot put).
	WriteConcern = cluster.WriteConcern
	// DurabilityEvent is the outcome of one synchronous-concern write
	// (RegistryCenter.OnDurability; bridged onto the kernel as
	// cluster.durable / cluster.degraded events).
	DurabilityEvent = cluster.DurabilityEvent
)

// Membership states.
const (
	StateAlive   = cluster.StateAlive
	StateSuspect = cluster.StateSuspect
	StateDead    = cluster.StateDead
)

// Federation write concerns.
const (
	WriteAsync  = cluster.WriteAsync
	WriteOne    = cluster.WriteOne
	WriteQuorum = cluster.WriteQuorum
)

// ErrNotDurable reports a federation write that landed locally but fell
// short of its write concern (too few peer acks); anti-entropy keeps
// retrying delivery. Replicators react by re-queueing the capture.
var ErrNotDurable = cluster.ErrNotDurable

// ParseWriteConcern validates a write-concern string (flag boundary).
var ParseWriteConcern = cluster.ParseWriteConcern

// Cluster-layer event topics.
const (
	TopicHostDead        = core.TopicHostDead
	TopicRehomed         = core.TopicRehomed
	TopicRehomeFailed    = core.TopicRehomeFailed
	TopicSuperseded      = core.TopicSuperseded
	TopicStateReplicated = core.TopicStateReplicated
	TopicStateRestored   = core.TopicStateRestored
	TopicDurable         = core.TopicClusterDurable
	TopicDegraded        = core.TopicClusterDegraded
)

// State pipeline (snapshot codec + delta replication). With
// ClusterConfig.ReplicateState set, every host streams its applications'
// snapshots to its space's registry center (HostRuntime.Replicator) as a
// delta pipeline: unchanged applications are skipped without serializing
// a byte (per-component dirty counters), changed ones ship only their
// changed components as checksummed delta frames against the last acked
// base, and centers compact delta chains into fresh bases so failover
// still restores from a single record. The federation replicates records
// to every peer space and failover restores the freshest copy, so
// re-homed applications resume where they left off.
type (
	// SnapshotRecord is one application's replicated snapshot: a full
	// base frame plus a bounded delta chain.
	SnapshotRecord = state.SnapshotRecord
	// SnapshotPut is one replication publish (full frame or delta).
	SnapshotPut = state.SnapshotPut
	// SnapshotStamp is a center's acknowledgement of a put.
	SnapshotStamp = state.SnapshotStamp
	// Replicator streams one host's application snapshots.
	Replicator = state.Replicator
	// ReplicatorTuning parameterizes the delta pipeline (re-baseline
	// policy, byte-budget cadence, full-frame fallback).
	ReplicatorTuning = state.Tuning
	// ReplicationStats counts what a replicator shipped and skipped.
	ReplicationStats = state.Stats
	// WrapDelta is the changed-components-only form of a wrap.
	WrapDelta = state.WrapDelta
	// SnapshotClient is a remote state publisher speaking the snapshot
	// wire protocol a federated center serves (multi-process daemons).
	SnapshotClient = cluster.SnapshotClient
	// TaggedSnapshot is one recorded snapshot with provenance.
	TaggedSnapshot = app.TaggedSnapshot
)

// EncodeWrap frames a wrap with the versioned, checksummed state codec —
// the single wire format for migration and snapshot replication.
func EncodeWrap(w Wrap) ([]byte, error) { return state.EncodeWrap(w) }

// DecodeWrap verifies and decodes a framed wrap.
func DecodeWrap(raw []byte) (Wrap, error) { return state.DecodeWrap(raw) }

// EncodeDelta frames a changed-components-only delta.
func EncodeDelta(d WrapDelta) ([]byte, error) { return state.EncodeDelta(d) }

// DecodeDelta verifies and decodes a delta frame.
func DecodeDelta(raw []byte) (WrapDelta, error) { return state.DecodeDelta(raw) }

// ApplyDelta reassembles the full wrap a delta describes over its base
// (digest-checked; state.ErrBaseMismatch on any other base).
func ApplyDelta(base Wrap, d WrapDelta) (Wrap, error) { return state.ApplyDelta(base, d) }

// WrapDigest hashes a wrap's content canonically — the digest the delta
// pipeline chains captures with.
func WrapDigest(w Wrap) [32]byte { return state.WrapDigest(w) }

// Portable app bundles (signed, secret-free app distribution). A bundle
// packs an application's manifest — components, resource references, an
// optional initial-state frame — into one Ed25519-signed artifact that
// any host in the federation can instantiate without a compiled-in
// factory. Secrets never ride in a bundle: the manifest carries ref://
// references that a Resolver answers from the environment or a secrets
// file at install time. Push one bundle to any registry center
// (Middleware.PushBundle, `mdctl bundle push`) and every space
// replicates it; install anywhere with Middleware.InstallBundle.
type (
	// Bundle is a verified (or inspected) portable app bundle.
	Bundle = bundle.Bundle
	// BundleManifest declares what a bundle assembles.
	BundleManifest = bundle.Manifest
	// BundleComponentSpec is one declared component (name + kind).
	BundleComponentSpec = bundle.ComponentSpec
	// BundleSecretRef is one named ref:// secret reference.
	BundleSecretRef = bundle.SecretRef
	// SecretResolver answers ref://env/... and ref://file/... references.
	SecretResolver = bundle.Resolver
)

// Bundle codec and helpers.
var (
	// PackBundle assembles and signs a bundle.
	PackBundle = bundle.Pack
	// OpenBundle verifies a bundle against trusted publisher keys.
	OpenBundle = bundle.Open
	// InspectBundle decodes a bundle without a trust decision.
	InspectBundle = bundle.Inspect
	// InstantiateBundle builds an application factory from a bundle.
	InstantiateBundle = bundle.Instantiate
	// GenerateBundleKey mints an Ed25519 signing keypair.
	GenerateBundleKey = bundle.GenerateKey
	// LoadSecretsFile parses a key=value secrets file into a Resolver.
	LoadSecretsFile = bundle.LoadSecretsFile
)

// Bundle refusal sentinels (errors.Is works across the wire).
var (
	// ErrBundleNotBundle reports bytes that are not a bundle at all.
	ErrBundleNotBundle = bundle.ErrNotBundle
	// ErrBundleVersion reports a bundle format version this build does
	// not speak.
	ErrBundleVersion = bundle.ErrVersion
	// ErrBundleCorrupt reports structural or checksum damage.
	ErrBundleCorrupt = bundle.ErrCorrupt
	// ErrBundleUnsigned reports a bundle with no signature section.
	ErrBundleUnsigned = bundle.ErrUnsigned
	// ErrBundleBadSignature reports a signature that does not verify.
	ErrBundleBadSignature = bundle.ErrBadSignature
	// ErrBundleUntrustedKey reports a valid signature by an untrusted key.
	ErrBundleUntrustedKey = bundle.ErrUntrustedKey
	// ErrBundleSecret reports a secret reference that failed to resolve.
	ErrBundleSecret = bundle.ErrSecret
)

// Control plane (versioned remote API; cmd/mdctl is the CLI).
type (
	// Client is the typed control-plane client: lifecycle
	// (RunApp/StopApp/Migrate/InstallApp), introspection (Members, Apps
	// with snapshot metadata, Snapshots, Stats), and a server-streamed
	// Watch of typed events. It speaks the same versioned protocol to an
	// in-process deployment (ServeControl) and to the TCP daemons.
	Client = ctl.Client
	// ControlServer serves the control plane over transport endpoints.
	ControlServer = ctl.Server
	// ControlBackend is the pluggable surface a ControlServer exposes.
	ControlBackend = ctl.Backend
	// ServerInfo describes a control-plane endpoint (role, protocol).
	ServerInfo = ctl.ServerInfo
	// MemberInfo is one gossip membership entry with its incarnation.
	MemberInfo = ctl.MemberInfo
	// AppInfo is one installation record with snapshot-head metadata.
	AppInfo = ctl.AppInfo
	// SnapshotHead is a replicated snapshot's listable metadata
	// (sequence, delta chain, durability) without its frames.
	SnapshotHead = state.SnapshotHead
	// HostStats is one host replicator's counters.
	HostStats = ctl.HostStats
	// MigrateRequest asks the control plane to follow-me an app.
	MigrateRequest = ctl.MigrateRequest
	// MigrateResult is the migration outcome with phase timings.
	MigrateResult = ctl.MigrateResult
	// WatchEvent is one streamed event (bus form + typed form).
	WatchEvent = ctl.WatchEvent
)

// NewControlClient creates a control-plane client calling the server
// endpoint through ep.
var NewControlClient = ctl.NewClient

// ControlAlias is the well-known endpoint alias every control-plane TCP
// daemon answers to — mdctl needs only an address.
const ControlAlias = ctl.Alias

// ProtoVersion is the newest control-plane (and registry/snapshot)
// wire protocol version this build speaks — what ServerInfo.Proto
// reports. v2 adds the binary fast path for snapshot puts and watch
// pushes; every op still interoperates with v1 peers via negotiation.
const ProtoVersion = transport.MaxProto

// Typed sentinel errors shared by in-process and remote callers.
var (
	// ErrUnknownHost reports an operation addressed to an unprovisioned
	// host.
	ErrUnknownHost = ctl.ErrUnknownHost
	// ErrAppNotFound reports an operation on an app the target is not
	// running (and has no skeleton for).
	ErrAppNotFound = ctl.ErrAppNotFound
	// ErrUnsupported reports an operation this control-plane endpoint
	// does not serve.
	ErrUnsupported = ctl.ErrUnsupported
	// ErrUnknownApp reports an install of an app the target host cannot
	// assemble: no compiled-in factory and no stored bundle.
	ErrUnknownApp = ctl.ErrUnknownApp
	// ErrVersion reports a wire frame whose protocol version the peer
	// does not speak.
	ErrVersion = transport.ErrVersion
)

// Typed events (the control plane's Watch payloads and the kernel's
// exported catalog; string topics remain the bus encoding).
type (
	// TypedEvent is one exported event in struct form.
	TypedEvent = ctxkernel.TypedEvent
	// EventTopic enumerates the exported event kinds.
	EventTopic = ctxkernel.Topic
	// MigratedEvent reports a completed migration (agent- or
	// operator-driven) with its three-phase timing split.
	MigratedEvent = ctxkernel.AppMigratedEvent
	// MigrateFailedEvent reports a migration attempt that did not land.
	MigrateFailedEvent = ctxkernel.AppMigrateFailedEvent
	// AppStartedEvent reports an application run on a host.
	AppStartedEvent = ctxkernel.AppStartedEvent
	// AppStoppedEvent reports a graceful stop.
	AppStoppedEvent = ctxkernel.AppStoppedEvent
	// MemberEvent is one gossip membership transition.
	MemberEvent = ctxkernel.MemberEvent
	// HostDeadEvent reports a quorum death conviction.
	HostDeadEvent = ctxkernel.HostDeadEvent
	// RehomedEvent reports one application relaunched by failover.
	RehomedEvent = ctxkernel.RehomedEvent
	// RehomeFailedEvent reports failover that could not re-home.
	RehomeFailedEvent = ctxkernel.RehomeFailedEvent
	// SupersededEvent reports a revived host stopping its stale copy.
	SupersededEvent = ctxkernel.SupersededEvent
	// StateReplicatedEvent reports one snapshot publish.
	StateReplicatedEvent = ctxkernel.StateReplicatedEvent
	// StateRestoredEvent reports a snapshot-backed failover restore.
	StateRestoredEvent = ctxkernel.StateRestoredEvent
	// FederationWriteEvent is a durable/degraded write outcome.
	FederationWriteEvent = ctxkernel.FederationWriteEvent
	// UserEnteredEvent reports a user appearing in a room.
	UserEnteredEvent = ctxkernel.UserEnteredEvent
	// UserLeftEvent reports a user leaving a room.
	UserLeftEvent = ctxkernel.UserLeftEvent
)

// EventFromBus decodes a bus event into its typed form (GenericEvent
// for topics outside the catalog).
var EventFromBus = ctxkernel.FromBus

// ParseEventTopic maps a bus topic string to its exported kind.
var ParseEventTopic = ctxkernel.ParseTopic

// Agents (paper §4.3).
type (
	// Policy configures an autonomous agent's decisions.
	Policy = agents.Policy
	// MoveOrder is the AA -> MA command payload.
	MoveOrder = agents.MoveOrder
)

// DefaultPolicy returns the paper's defaults for a (user, app) pair.
func DefaultPolicy(user, appName string) Policy { return agents.DefaultPolicy(user, appName) }

// Agent-layer event topics.
const (
	TopicMigrated      = agents.TopicMigrated
	TopicMigrateFailed = agents.TopicMigrateFailed
)

// Context layer (paper §3.4, §4.1).
type (
	// Event is one context fact.
	Event = ctxkernel.Event
	// Kernel is the pub/sub context hub.
	Kernel = ctxkernel.Kernel
)

// Context topics.
const (
	TopicUserEntered  = ctxkernel.TopicUserEntered
	TopicUserLeft     = ctxkernel.TopicUserLeft
	TopicUserLocation = ctxkernel.TopicUserLocation
	TopicNetworkRTT   = ctxkernel.TopicNetworkRTT
)

// Sensors (paper §4.1).
type (
	// Point is a 2-D coordinate in meters.
	Point = sensor.Point
	// Script is a scripted user movement path.
	Script = sensor.Script
	// Step is one leg of a movement path.
	Step = sensor.Step
)

// Resources and matching (paper §4.4).
type (
	// Resource describes one resource instance on a host.
	Resource = owl.Resource
	// MatchMode selects syntactic vs semantic matching.
	MatchMode = owl.MatchMode
	// Rebinding is a resource rebinding plan.
	Rebinding = owl.Rebinding
)

// Match modes and rebinding actions.
const (
	MatchSyntactic = owl.MatchSyntactic
	MatchSemantic  = owl.MatchSemantic
	RebindUseLocal = owl.RebindUseLocal
	RebindCarry    = owl.RebindCarry
	RebindRemote   = owl.RebindRemote
)

// Descriptions and devices (paper §4.2.2).
type (
	// Description is a WSDL-like interface description.
	Description = wsdl.Description
	// DeviceProfile describes a device's capabilities.
	DeviceProfile = wsdl.DeviceProfile
)

// Testbed modeling (paper §5's evaluation hardware).
type (
	// HostProfile models a host's compute characteristics.
	HostProfile = netsim.HostProfile
	// LinkProfile models a network link.
	LinkProfile = netsim.LinkProfile
)

// Testbed presets.
var (
	Pentium4_1700 = netsim.Pentium4_1700
	PentiumM_1600 = netsim.PentiumM_1600
	Ethernet10    = netsim.Ethernet10
	Ethernet100   = netsim.Ethernet100
	WLAN11        = netsim.WLAN11
)

// Clocks.
type (
	// Clock is the time source for costed operations.
	Clock = vclock.Clock
	// VirtualClock advances only by cost charges (deterministic, fast).
	VirtualClock = vclock.Virtual
	// RealClock paces operations against the wall clock.
	RealClock = vclock.Real
)

// NewVirtualClock returns a Virtual clock starting at epoch.
var NewVirtualClock = vclock.NewVirtual

// Media (paper §5's demo payloads).
type (
	// MediaFile is one media payload with integrity metadata.
	MediaFile = media.File
	// SlideDeck is a presentation deck.
	SlideDeck = media.SlideDeck
)

// Media generators.
var (
	GenerateFile = media.GenerateFile
	GenerateDeck = media.GenerateDeck
)
