// Command mdagentd runs one MDAgent host node over real TCP: a migration
// engine, a media library server, a registry-center client, and (in
// federated mode) a gossip membership node. Two or more nodes plus one or
// more mdregistry centers form a multi-process deployment of the paper's
// testbed.
//
// Terminal 1 — the registry center:
//
//	mdregistry -listen 127.0.0.1:7001
//
// Terminal 2 — the destination host (installs the player skeleton):
//
//	mdagentd -host hostB -listen 127.0.0.1:7003 -registry 127.0.0.1:7001 \
//	         -install smart-media-player
//
// Terminal 3 — the source host, which runs the player and migrates it:
//
//	mdagentd -host hostA -listen 127.0.0.1:7002 -registry 127.0.0.1:7001 \
//	         -peer hostB=127.0.0.1:7003 -run smart-media-player \
//	         -song-bytes 2000000 -migrate-to hostB
//
// Federated mode adds -space (the host's smart space, whose mdregistry
// center must run with the same -space) and SWIM gossip membership with
// every -peer host: the daemon prints alive/suspect/dead transitions as
// the failure detector sees them. With -replicate, -write-concern
// one|quorum stamps every snapshot put with a durability header: the
// center acks only after enough peer centers hold the write, so captured
// state survives the center dying before its next federation push.
//
// Durations printed by -migrate-to are wall-clock (no simulated testbed
// in multi-process mode); use cmd/mdbench for the paper's calibrated
// numbers.
package main

import (
	"context"
	"crypto/ed25519"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/bundle"
	"mdagent/internal/cluster"
	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/migrate"
	"mdagent/internal/obs"
	"mdagent/internal/owl"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/transport"
	"mdagent/internal/wsdl"
)

// skeletonApp describes an installable demo-app skeleton — the single
// source of truth for what -install accepts and how it wires up.
type skeletonApp struct {
	desc       wsdl.Description
	components []string
	factory    func(host string) *app.Application
}

func skeletonApps() map[string]skeletonApp {
	return map[string]skeletonApp{
		"smart-media-player": {
			desc:       demoapps.MediaPlayerDesc(),
			components: demoapps.MediaPlayerSkeletonComponents(),
			factory:    func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) },
		},
		"ubiquitous-slideshow": {
			desc:       demoapps.SlideShowDesc(),
			components: demoapps.SlideShowSkeletonComponents(),
			factory:    func(h string) *app.Application { return demoapps.SlideShowSkeleton(h) },
		},
	}
}

// trustList accumulates repeated -trust-key hex Ed25519 public keys.
type trustList []ed25519.PublicKey

func (t *trustList) String() string {
	parts := make([]string, 0, len(*t))
	for _, k := range *t {
		parts = append(parts, bundle.FormatPublicKey(k))
	}
	return strings.Join(parts, ",")
}

func (t *trustList) Set(v string) error {
	k, err := bundle.ParsePublicKey(v)
	if err != nil {
		return err
	}
	*t = append(*t, k)
	return nil
}

type peerList map[string]string

func (p peerList) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=addr, got %q", v)
	}
	p[name] = addr
	return nil
}

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	switch err := run(os.Args[1:], os.Stdout, nil, stop); {
	case err == nil, errors.Is(err, flag.ErrHelp):
	default:
		log.Fatalf("mdagentd: %v", err)
	}
}

// run is the testable body of mdagentd. It reports the bound listen
// address through ready (when non-nil), then serves until stop closes —
// except in -migrate-to mode, which returns right after the migration.
func run(args []string, out io.Writer, ready func(addr string), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("mdagentd", flag.ContinueOnError)
	fs.SetOutput(out)
	host := fs.String("host", "hostA", "this node's host id")
	listen := fs.String("listen", "127.0.0.1:7002", "TCP listen address")
	regAddr := fs.String("registry", "127.0.0.1:7001", "registry center address")
	space := fs.String("space", "", "smart space (federated mode: registry is registry@<space>, gossip membership on)")
	peers := peerList{}
	fs.Var(peers, "peer", "peer host mapping name=addr (repeatable)")
	install := fs.String("install", "", "install an app skeleton: smart-media-player or ubiquitous-slideshow")
	runApp := fs.String("run", "", "run a full app: smart-media-player")
	songBytes := fs.Int64("song-bytes", 2_000_000, "synthetic song size for -run")
	migrateTo := fs.String("migrate-to", "", "after startup, follow-me the running app to this host and exit")
	static := fs.Bool("static", false, "use static (whole-app) binding for -migrate-to")
	probe := fs.Duration("probe", 0, "gossip probe interval (federated mode; 0 = default)")
	suspicion := fs.Duration("suspicion", 0, "gossip suspect->dead window (federated mode; 0 = default)")
	replicate := fs.Duration("replicate", 0, "stream application snapshots to the space center on this interval (federated mode; 0 = off)")
	concern := fs.String("write-concern", "", "write concern requested on every snapshot put: async, one, or quorum (empty = center default; needs -replicate)")
	debugAddr := fs.String("debug-addr", "", "HTTP debug listen address: /metrics, /healthz, /debug/pprof (empty = off)")
	trusted := trustList{}
	fs.Var(&trusted, "trust-key", "trusted bundle publisher key, hex ed25519 public key (repeatable; none = refuse every bundle)")
	secretsFile := fs.String("secrets-file", "", "key=value file resolving bundle ref://file/... secret references")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wc, err := cluster.ParseWriteConcern(*concern)
	if err != nil {
		return err
	}
	if *concern != "" && (*space == "" || *replicate <= 0) {
		return fmt.Errorf("-write-concern %s requires -space and -replicate (it stamps snapshot puts)", wc)
	}
	var secrets bundle.Resolver
	if *secretsFile != "" {
		secrets, err = bundle.LoadSecretsFile(*secretsFile)
		if err != nil {
			return err
		}
	}
	skeletons := skeletonApps()
	if *install != "" {
		if _, ok := skeletons[*install]; !ok {
			return fmt.Errorf("unknown -install %q", *install)
		}
	}
	if *runApp != "" && *runApp != "smart-media-player" {
		return fmt.Errorf("unknown -run %q", *runApp)
	}

	node, err := transport.ListenTCP(migrate.EndpointName(*host), *listen)
	if err != nil {
		return err
	}
	defer node.Close()
	registryName := "registry-center"
	if *space != "" {
		registryName = cluster.CenterEndpointName(*space)
	}
	node.AddPeer(registryName, *regAddr)
	for name, addr := range peers {
		node.AddPeer(migrate.EndpointName(name), addr)
		node.AddPeer(migrate.MediaEndpointName(name), addr)
	}

	// The media library shares the node's endpoint: media.* and migrate.*
	// message types coexist on one handler table. The alias makes the
	// node answer requests addressed to its media name — peers map
	// media@<host> to this same address, and without the alias those
	// requests would be silently dropped (the sender hangs to deadline).
	node.AddAlias(migrate.MediaEndpointName(*host))
	lib := media.NewLibrary(*host)
	media.ServeLibrary(lib, node.Endpoint())

	cat := registry.NewClient(node.Endpoint(), registryName)
	eng := migrate.NewEngine(*host, node.Endpoint(), nil, nil, cat, migrate.DefaultCosts())

	// The daemon's local context kernel feeds the control plane's Watch
	// stream: membership transitions, replication publishes, and
	// lifecycle outcomes all surface here as typed events.
	kernel := ctxkernel.NewKernel()

	// Federated mode: gossip membership with every peer host, multiplexed
	// onto the engine endpoint.
	var member *cluster.Node
	if *space != "" {
		member = cluster.NewNode(cluster.Member{ID: *host, Space: *space}, node.Endpoint(), cluster.Config{
			ProbeInterval:    *probe,
			SuspicionTimeout: *suspicion,
		})
		member.OnChange(func(_ *cluster.Node, m cluster.Member) {
			fmt.Fprintf(out, "mdagentd[%s]: member %s -> %s (incarnation %d)\n", *host, m.ID, m.State, m.Incarnation)
			kernel.PublishTyped("cluster", ctxkernel.MemberEvent{
				Host: m.ID, Space: m.Space, State: m.State.String(),
				Incarnation: m.Incarnation, At: time.Now(),
			})
		})
		for name := range peers {
			member.Join(cluster.Member{ID: name, Endpoint: migrate.EndpointName(name)})
		}
		member.Start()
		defer member.Stop()
		// A (re)starting daemon announces itself: peers that convicted a
		// previous incarnation of this host hold death certificates that
		// only an alive rumor with a higher incarnation clears. Rejoin
		// bumps ours and pings every peer so the refutation lands now;
		// the periodic dead-member probe (Config.DeadProbeEvery) covers
		// later silent reconnections, e.g. a healed network partition.
		member.Rejoin()
		fmt.Fprintf(out, "mdagentd[%s]: rejoined membership (incarnation %d)\n", *host, member.Self().Incarnation)
	}

	// State replication over the wire: the daemon's replicator publishes
	// delta-pipelined snapshot puts to the space center through the same
	// TCP endpoint its registry traffic uses, so a multi-process
	// deployment joins the state pipeline (and failover restores) exactly
	// like an in-process one.
	var snapCli *cluster.SnapshotClient
	var repl *state.Replicator
	if *space != "" {
		// The snapshot client doubles as the control plane's window onto
		// the center's replicated snapshot heads, so it exists in every
		// federated deployment, replicating or not.
		snapCli = cluster.NewSnapshotClient(node.Endpoint(), registryName)
	}
	if *space != "" && *replicate > 0 {
		// Every put carries the requested write concern as its wire
		// header; the center blocks the put until enough peer centers
		// acked, and answers NotDurable in-band on shortfall so the
		// replicator re-queues instead of advancing its acked base. An
		// empty flag sends no header and defers to the center's default.
		if *concern != "" {
			snapCli.SetWriteConcern(wc)
		}
		repl = state.NewReplicator(*host, *space, eng.Apps, snapCli, nil, *replicate, state.Tuning{})
		repl.OnPublish(func(put state.SnapshotPut, stamp state.SnapshotStamp) {
			kind := "full"
			if put.Delta {
				kind = "delta"
			}
			kernel.PublishTyped("state", ctxkernel.StateReplicatedEvent{
				App: put.App, Host: put.Host, FrameKind: kind,
				Seq: stamp.Seq, Bytes: len(put.Frame), Chain: stamp.Chain, At: put.At,
			})
		})
		repl.Start()
		defer repl.Stop()
		if wc != cluster.WriteAsync {
			fmt.Fprintf(out, "mdagentd[%s]: replicating application state every %v (write concern %s)\n", *host, *replicate, wc)
		} else {
			fmt.Fprintf(out, "mdagentd[%s]: replicating application state every %v\n", *host, *replicate)
		}
	}

	// Control plane: the daemon answers the versioned ctl protocol on its
	// existing endpoint under the well-known "ctl" alias, so an operator
	// (cmd/mdctl) needs only the listen address to run, stop, migrate,
	// inspect, and watch this host.
	node.AddAlias(ctl.Alias)
	ctlSrv := ctl.NewServer(daemonBackend(*host, *space, eng, cat, member, snapCli, repl, skeletons, kernel, trusted, secrets))
	ctlSrv.Serve(node.Endpoint())
	defer ctlSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cat.RegisterDevice(ctx, wsdl.DeviceProfile{
		Host: *host, ScreenWidth: 1024, ScreenHeight: 768,
		MemoryMB: 512, HasAudio: true, HasDisplay: true,
	}); err != nil {
		return fmt.Errorf("register device: %w", err)
	}

	if *install != "" {
		sk := skeletons[*install]
		eng.InstallFactory(*install, sk.factory)
		if err := cat.RegisterApp(ctx, registry.AppRecord{
			Name: *install, Host: *host, Space: *space,
			Description: sk.desc, Components: sk.components,
		}); err != nil {
			return fmt.Errorf("register skeleton: %w", err)
		}
		fmt.Fprintf(out, "mdagentd[%s]: installed %s skeleton\n", *host, *install)
	}

	if *runApp == "smart-media-player" {
		song := media.GenerateFile("song1", *songBytes, 3)
		lib.Add(song)
		player := demoapps.NewMediaPlayer(*host, song)
		if err := eng.Run(player); err != nil {
			return err
		}
		if err := cat.RegisterApp(ctx, registry.AppRecord{
			Name: "smart-media-player", Host: *host, Space: *space,
			Description: demoapps.MediaPlayerDesc(), Components: player.Components(),
			Running: true,
		}); err != nil {
			return fmt.Errorf("register app: %w", err)
		}
		if err := cat.RegisterResource(ctx, demoapps.MusicResource(song, *host)); err != nil {
			return fmt.Errorf("register resource: %w", err)
		}
		fmt.Fprintf(out, "mdagentd[%s]: running smart-media-player (%d-byte song)\n", *host, *songBytes)
	}

	if *migrateTo != "" {
		binding := migrate.BindingAdaptive
		if *static {
			binding = migrate.BindingStatic
		}
		mctx, mcancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer mcancel()
		rep, err := eng.FollowMe(mctx, "smart-media-player", *migrateTo, binding, owl.MatchSemantic)
		if err != nil {
			return fmt.Errorf("migrate: %w", err)
		}
		fmt.Fprintf(out, "mdagentd[%s]: migrated smart-media-player to %s (%s binding)\n", *host, *migrateTo, binding)
		fmt.Fprintf(out, "  suspend %v, migrate %v, resume %v, total %v, %d bytes, carried %v\n",
			rep.Suspend, rep.Migrate, rep.Resume, rep.Total(), rep.BytesMoved, rep.Carried)
		return nil
	}

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(out, "mdagentd[%s]: debug on %s\n", *host, dbg.Addr())
	}

	fmt.Fprintf(out, "mdagentd[%s]: serving on %s (registry %s)\n", *host, node.Addr(), *regAddr)
	if ready != nil {
		ready(node.Addr())
	}
	<-stop

	// Graceful leave: flush any captured-but-unpublished state to the
	// center, then broadcast an intentional-leave death certificate so
	// peers convict this host immediately instead of burning a suspicion
	// window on it. Both steps are best-effort — a SIGTERM race with a
	// dead center must not hang the shutdown.
	if repl != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = repl.SyncNow(sctx)
		scancel()
	}
	if member != nil {
		member.Leave()
		fmt.Fprintf(out, "mdagentd[%s]: announced leave (incarnation %d)\n", *host, member.Self().Incarnation)
	}
	fmt.Fprintf(out, "mdagentd[%s]: shutting down\n", *host)
	return nil
}
