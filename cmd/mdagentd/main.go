// Command mdagentd runs one MDAgent host node over real TCP: a migration
// engine, a media library server, and a registry-center client. Two or
// more nodes plus one mdregistry form a minimal multi-process deployment
// of the paper's testbed.
//
// Terminal 1 — the registry center:
//
//	mdregistry -listen 127.0.0.1:7001
//
// Terminal 2 — the destination host (installs the player skeleton):
//
//	mdagentd -host hostB -listen 127.0.0.1:7003 -registry 127.0.0.1:7001 \
//	         -install smart-media-player
//
// Terminal 3 — the source host, which runs the player and migrates it:
//
//	mdagentd -host hostA -listen 127.0.0.1:7002 -registry 127.0.0.1:7001 \
//	         -peer hostB=127.0.0.1:7003 -run smart-media-player \
//	         -song-bytes 2000000 -migrate-to hostB
//
// Durations printed by -migrate-to are wall-clock (no simulated testbed
// in multi-process mode); use cmd/mdbench for the paper's calibrated
// numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/migrate"
	"mdagent/internal/owl"
	"mdagent/internal/registry"
	"mdagent/internal/transport"
	"mdagent/internal/wsdl"
)

type peerList map[string]string

func (p peerList) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=addr, got %q", v)
	}
	p[name] = addr
	return nil
}

func main() {
	host := flag.String("host", "hostA", "this node's host id")
	listen := flag.String("listen", "127.0.0.1:7002", "TCP listen address")
	regAddr := flag.String("registry", "127.0.0.1:7001", "registry center address")
	peers := peerList{}
	flag.Var(peers, "peer", "peer host mapping name=addr (repeatable)")
	install := flag.String("install", "", "install an app skeleton: smart-media-player or ubiquitous-slideshow")
	run := flag.String("run", "", "run a full app: smart-media-player")
	songBytes := flag.Int64("song-bytes", 2_000_000, "synthetic song size for -run")
	migrateTo := flag.String("migrate-to", "", "after startup, follow-me the running app to this host and exit")
	static := flag.Bool("static", false, "use static (whole-app) binding for -migrate-to")
	flag.Parse()

	node, err := transport.ListenTCP(migrate.EndpointName(*host), *listen)
	if err != nil {
		log.Fatalf("mdagentd: %v", err)
	}
	defer node.Close()
	node.AddPeer("registry-center", *regAddr)
	for name, addr := range peers {
		node.AddPeer(migrate.EndpointName(name), addr)
		node.AddPeer(migrate.MediaEndpointName(name), addr)
	}

	// The media library shares the node's endpoint: media.* and migrate.*
	// message types coexist on one handler table.
	lib := media.NewLibrary(*host)
	media.ServeLibrary(lib, node.Endpoint())

	cat := registry.NewClient(node.Endpoint(), "registry-center")
	eng := migrate.NewEngine(*host, node.Endpoint(), nil, nil, cat, migrate.DefaultCosts())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cat.RegisterDevice(ctx, wsdl.DeviceProfile{
		Host: *host, ScreenWidth: 1024, ScreenHeight: 768,
		MemoryMB: 512, HasAudio: true, HasDisplay: true,
	}); err != nil {
		log.Fatalf("mdagentd: register device: %v", err)
	}

	switch *install {
	case "":
	case "smart-media-player":
		eng.InstallFactory("smart-media-player", func(h string) *app.Application {
			return demoapps.MediaPlayerSkeleton(h)
		})
		if err := cat.RegisterApp(ctx, registry.AppRecord{
			Name: "smart-media-player", Host: *host,
			Description: demoapps.MediaPlayerDesc(),
			Components:  demoapps.MediaPlayerSkeletonComponents(),
		}); err != nil {
			log.Fatalf("mdagentd: register skeleton: %v", err)
		}
		fmt.Printf("mdagentd[%s]: installed smart-media-player skeleton\n", *host)
	case "ubiquitous-slideshow":
		eng.InstallFactory("ubiquitous-slideshow", func(h string) *app.Application {
			return demoapps.SlideShowSkeleton(h)
		})
		if err := cat.RegisterApp(ctx, registry.AppRecord{
			Name: "ubiquitous-slideshow", Host: *host,
			Description: demoapps.SlideShowDesc(),
			Components:  demoapps.SlideShowSkeletonComponents(),
		}); err != nil {
			log.Fatalf("mdagentd: register skeleton: %v", err)
		}
		fmt.Printf("mdagentd[%s]: installed ubiquitous-slideshow skeleton\n", *host)
	default:
		log.Fatalf("mdagentd: unknown -install %q", *install)
	}

	if *run == "smart-media-player" {
		song := media.GenerateFile("song1", *songBytes, 3)
		lib.Add(song)
		player := demoapps.NewMediaPlayer(*host, song)
		if err := eng.Run(player); err != nil {
			log.Fatalf("mdagentd: %v", err)
		}
		if err := cat.RegisterApp(ctx, registry.AppRecord{
			Name: "smart-media-player", Host: *host,
			Description: demoapps.MediaPlayerDesc(), Components: player.Components(),
		}); err != nil {
			log.Fatalf("mdagentd: register app: %v", err)
		}
		if err := cat.RegisterResource(ctx, demoapps.MusicResource(song, *host)); err != nil {
			log.Fatalf("mdagentd: register resource: %v", err)
		}
		fmt.Printf("mdagentd[%s]: running smart-media-player (%d-byte song)\n", *host, *songBytes)
	} else if *run != "" {
		log.Fatalf("mdagentd: unknown -run %q", *run)
	}

	if *migrateTo != "" {
		binding := migrate.BindingAdaptive
		if *static {
			binding = migrate.BindingStatic
		}
		mctx, mcancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer mcancel()
		rep, err := eng.FollowMe(mctx, "smart-media-player", *migrateTo, binding, owl.MatchSemantic)
		if err != nil {
			log.Fatalf("mdagentd: migrate: %v", err)
		}
		fmt.Printf("mdagentd[%s]: migrated smart-media-player to %s (%s binding)\n", *host, *migrateTo, binding)
		fmt.Printf("  suspend %v, migrate %v, resume %v, total %v, %d bytes, carried %v\n",
			rep.Suspend, rep.Migrate, rep.Resume, rep.Total(), rep.BytesMoved, rep.Carried)
		return
	}

	fmt.Printf("mdagentd[%s]: serving on %s (registry %s)\n", *host, node.Addr(), *regAddr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("mdagentd[%s]: shutting down\n", *host)
}
