package main

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/bundle"
	"mdagent/internal/cluster"
	"mdagent/internal/core"
	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/migrate"
	"mdagent/internal/obs"
	"mdagent/internal/owl"
	"mdagent/internal/registry"
	"mdagent/internal/state"
)

// Bundle accounting — the same metric names every mdagent process
// registers, so /metrics reads identically across the fleet.
var (
	mBundlePushes   = obs.Default.Counter("mdagent_bundle_pushes_total")
	mBundleInstalls = obs.Default.Counter("mdagent_bundle_installs_total")
	mBundleRejected = obs.Default.Counter("mdagent_bundle_rejected_total")
	mBundleBytes    = obs.Default.Counter("mdagent_bundle_bytes_total")
)

// verifyBundle opens raw against the daemon's trusted keys and checks
// the manifest names the app the bundle is stored (or pushed) as. Every
// refusal books a rejection metric; every acceptance books the payload
// bytes.
func verifyBundle(name string, raw []byte, trusted []ed25519.PublicKey) (*bundle.Bundle, error) {
	b, err := bundle.Open(raw, trusted)
	if err != nil {
		mBundleRejected.Inc()
		return nil, fmt.Errorf("mdagentd: refuse bundle %q: %w", name, err)
	}
	if b.Manifest.App != name {
		mBundleRejected.Inc()
		return nil, fmt.Errorf("mdagentd: refuse bundle: %w: named %q but manifest declares %q",
			bundle.ErrCorrupt, name, b.Manifest.App)
	}
	mBundleBytes.Add(int64(len(raw)))
	return b, nil
}

// daemonBackend builds this host daemon's control-plane surface:
// lifecycle on the local engine, introspection through the registry
// client (and, federated, the membership node + snapshot client), and
// the daemon kernel as the Watch source. Nil collaborators leave their
// operations unsupported — a standalone daemon has no membership view
// to serve.
func daemonBackend(host, space string, eng *migrate.Engine, cat *registry.Client,
	member *cluster.Node, snapCli *cluster.SnapshotClient, repl *state.Replicator,
	skeletons map[string]skeletonApp, kernel *ctxkernel.Kernel,
	trusted []ed25519.PublicKey, secrets bundle.Resolver) ctl.Backend {

	// checkHost rejects operations addressed to some other host — this
	// daemon serves exactly one.
	checkHost := func(h string) error {
		if h != "" && h != host {
			return fmt.Errorf("mdagentd: %w: %q (this daemon serves %s)", ctl.ErrUnknownHost, h, host)
		}
		return nil
	}

	// installFromBundle assembles an application factory from a bundle
	// stored at the center — the generic install arm: no compiled-in
	// skeleton needed, the signed manifest is the skeleton.
	installFromBundle := func(ctx context.Context, appName string) error {
		raw, found, err := cat.GetBundle(ctx, appName)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("mdagentd: %w: %q on %s", ctl.ErrUnknownApp, appName, host)
		}
		b, err := verifyBundle(appName, raw, trusted)
		if err != nil {
			return err
		}
		factory, err := bundle.Instantiate(b, secrets)
		if err != nil {
			mBundleRejected.Inc()
			return fmt.Errorf("mdagentd: instantiate bundle %q: %w", appName, err)
		}
		eng.InstallFactory(appName, factory)
		components := make([]string, 0, len(b.Manifest.Components))
		for _, spec := range b.Manifest.Components {
			components = append(components, spec.Name)
		}
		if err := cat.RegisterApp(ctx, registry.AppRecord{
			Name: appName, Host: host, Space: space,
			Description: b.Manifest.Description, Components: components,
		}); err != nil {
			return err
		}
		mBundleInstalls.Inc()
		return nil
	}

	b := ctl.Backend{
		Info: func(context.Context) (ctl.ServerInfo, error) {
			return ctl.ServerInfo{Role: "host", Host: host, Space: space}, nil
		},
		RunApp: func(ctx context.Context, appName, h string) error {
			if err := checkHost(h); err != nil {
				return err
			}
			factory, ok := eng.Factory(appName)
			if !ok {
				return fmt.Errorf("mdagentd: %w: no skeleton for %q installed on %s", ctl.ErrAppNotFound, appName, host)
			}
			inst := factory(host)
			if err := eng.Run(inst); err != nil {
				return err
			}
			if repl != nil {
				repl.Reinstate(appName)
			}
			if err := cat.RegisterApp(ctx, registry.AppRecord{
				Name: appName, Host: host, Space: space,
				Description: inst.Description(), Components: inst.Components(),
				Running: true,
			}); err != nil {
				return err
			}
			kernel.PublishTyped("ctl", ctxkernel.AppStartedEvent{App: appName, Host: host, At: time.Now()})
			return nil
		},
		StopApp: func(ctx context.Context, appName, h string) error {
			if err := checkHost(h); err != nil {
				return err
			}
			inst, ok := eng.App(appName)
			if !ok {
				return fmt.Errorf("mdagentd: %w: no running app %q on %s", ctl.ErrAppNotFound, appName, host)
			}
			if inst.State() == app.Running {
				if err := inst.Suspend(); err != nil {
					return err
				}
			}
			// Tombstone the replicated snapshot before unregistering, and
			// remove from the engine last, mirroring the in-process
			// StopApp's retry-safe ordering.
			if repl != nil {
				if err := repl.Retire(ctx, appName); err != nil {
					return err
				}
			}
			if err := cat.UnregisterApp(ctx, appName, host); err != nil {
				return err
			}
			eng.Remove(appName)
			kernel.PublishTyped("ctl", ctxkernel.AppStoppedEvent{App: appName, Host: host, At: time.Now()})
			return nil
		},
		Migrate: func(ctx context.Context, req ctl.MigrateRequest) (ctl.MigrateResult, error) {
			if err := checkHost(req.Host); err != nil {
				return ctl.MigrateResult{}, err
			}
			if _, ok := eng.App(req.App); !ok {
				return ctl.MigrateResult{}, fmt.Errorf("mdagentd: %w: no running app %q on %s", ctl.ErrAppNotFound, req.App, host)
			}
			binding := migrate.BindingAdaptive
			if req.Static {
				binding = migrate.BindingStatic
			}
			rep, err := eng.FollowMe(ctx, req.App, req.To, binding, owl.MatchSemantic)
			if err != nil {
				kernel.PublishTyped("ctl", ctxkernel.AppMigrateFailedEvent{
					App: req.App, Dest: req.To, Reason: "control plane", Error: err.Error(), At: time.Now(),
				})
				return ctl.MigrateResult{}, err
			}
			kernel.PublishTyped("ctl", ctxkernel.AppMigratedEvent{
				App: req.App, Dest: req.To, Mode: migrate.FollowMe.String(), Reason: "control plane",
				SuspendMs: rep.Suspend.Milliseconds(), MigrateMs: rep.Migrate.Milliseconds(),
				ResumeMs: rep.Resume.Milliseconds(), Bytes: rep.BytesMoved, At: time.Now(),
			})
			return ctl.MigrateResult{
				App: req.App, From: host, To: req.To,
				Suspend: rep.Suspend, Migrate: rep.Migrate, Resume: rep.Resume,
				BytesMoved: rep.BytesMoved, Carried: rep.Carried, Delta: rep.Delta,
			}, nil
		},
		Install: func(ctx context.Context, appName, h string) error {
			if err := checkHost(h); err != nil {
				return err
			}
			sk, ok := skeletons[appName]
			if !ok {
				// No compiled-in skeleton: fall back to a bundle pushed to
				// the center. A miss there too is the typed unknown-app
				// refusal (not ErrAppNotFound — nothing is installable).
				return installFromBundle(ctx, appName)
			}
			eng.InstallFactory(appName, sk.factory)
			if err := cat.RegisterApp(ctx, registry.AppRecord{
				Name: appName, Host: host, Space: space,
				Description: sk.desc, Components: sk.components,
			}); err != nil {
				return err
			}
			return nil
		},
		PushBundle: func(ctx context.Context, name string, raw []byte) error {
			// Verified before forwarding: a host daemon never launders an
			// unsigned or untrusted artifact into the federation.
			if _, err := verifyBundle(name, raw, trusted); err != nil {
				return err
			}
			if err := cat.PutBundle(ctx, name, raw); err != nil {
				return err
			}
			mBundlePushes.Inc()
			return nil
		},
		ListBundles: func(ctx context.Context) ([]ctl.BundleInfo, error) {
			infos, err := cat.Bundles(ctx)
			if err != nil {
				return nil, err
			}
			out := make([]ctl.BundleInfo, 0, len(infos))
			for _, info := range infos {
				out = append(out, ctl.BundleInfo{Name: info.Name, Bytes: info.Bytes})
			}
			return out, nil
		},
		InstallBundle: func(ctx context.Context, appName, h string) error {
			if err := checkHost(h); err != nil {
				return err
			}
			return installFromBundle(ctx, appName)
		},
		Apps: func(ctx context.Context) ([]ctl.AppInfo, error) {
			recs, err := cat.Apps(ctx)
			if err != nil {
				return nil, err
			}
			var heads []state.SnapshotHead
			if snapCli != nil {
				// Heads are garnish; a center hiccup must not hide the apps.
				if hs, err := snapCli.SnapshotHeads(ctx); err == nil {
					heads = hs
				}
			}
			return ctl.JoinApps(recs, heads), nil
		},
		Metrics: core.ObsMetrics,
		Trace:   core.ObsTrace,
		Kernel:  kernel,
	}
	if member != nil {
		b.Members = func(context.Context) ([]ctl.MemberInfo, error) {
			members := member.Members()
			out := make([]ctl.MemberInfo, 0, len(members))
			for _, m := range members {
				out = append(out, ctl.MemberInfo{
					ID: m.ID, Space: m.Space, State: m.State.String(), Incarnation: m.Incarnation,
				})
			}
			return out, nil
		}
	}
	if snapCli != nil {
		b.Snapshots = func(ctx context.Context) ([]state.SnapshotHead, error) {
			return snapCli.SnapshotHeads(ctx)
		}
	}
	if repl != nil {
		b.Stats = func(context.Context) ([]ctl.HostStats, error) {
			return []ctl.HostStats{{Host: host, Stats: repl.Stats()}}, nil
		}
	}
	return b
}
