package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mdagent/internal/cluster"
	"mdagent/internal/registry"
	"mdagent/internal/store"
	"mdagent/internal/transport"
)

// syncBuffer is a goroutine-safe bytes.Buffer for daemon output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// bootRegistry serves a plain registry center on 127.0.0.1:0 and returns
// its address and the registry for assertions.
func bootRegistry(t *testing.T) (string, *registry.Registry) {
	t.Helper()
	reg, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	node, err := transport.ListenTCP("registry-center", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	reg.Serve(node.Endpoint())
	return node.Addr(), reg
}

// startDaemon runs the mdagentd run() in a goroutine and returns its
// bound address once ready.
func startDaemon(t *testing.T, out *syncBuffer, args ...string) string {
	t.Helper()
	stop := make(chan struct{})
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(args, out, func(addr string) { addrc <- addr }, stop)
	}()
	t.Cleanup(func() {
		close(stop)
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("daemon %v exited: %v", args, err)
			}
		case <-time.After(10 * time.Second):
			t.Errorf("daemon %v did not shut down", args)
		}
	})
	select {
	case addr := <-addrc:
		return addr
	case err := <-errc:
		t.Fatalf("daemon %v failed to start: %v", args, err)
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon %v never became ready", args)
	}
	return ""
}

// TestEndToEndMigrationOverTCP boots a registry center plus two agent
// daemons on ephemeral TCP ports in-process and drives one follow-me
// migration from hostA to hostB — the full cmd wiring, no simulation.
func TestEndToEndMigrationOverTCP(t *testing.T) {
	regAddr, reg := bootRegistry(t)

	var outB syncBuffer
	addrB := startDaemon(t, &outB,
		"-host", "hostB", "-listen", "127.0.0.1:0",
		"-registry", regAddr, "-install", "smart-media-player")

	// The source daemon runs the player and migrates it, then returns.
	var outA syncBuffer
	err := run([]string{
		"-host", "hostA", "-listen", "127.0.0.1:0",
		"-registry", regAddr,
		"-peer", "hostB=" + addrB,
		"-run", "smart-media-player", "-song-bytes", "100000",
		"-migrate-to", "hostB",
	}, &outA, nil, nil)
	if err != nil {
		t.Fatalf("source daemon: %v\noutput:\n%s", err, outA.String())
	}
	if !strings.Contains(outA.String(), "migrated smart-media-player to hostB") {
		t.Fatalf("no migration line in output:\n%s", outA.String())
	}

	// The registry records the app's new home as running.
	rec, found, err := reg.LookupApp("smart-media-player", "hostB")
	if err != nil || !found {
		t.Fatalf("registry lookup after migration: found=%v err=%v", found, err)
	}
	if !rec.Running {
		t.Fatalf("hostB record not marked running: %+v", rec)
	}
	// And the source record is demoted to a non-running installation.
	if src, found, _ := reg.LookupApp("smart-media-player", "hostA"); found && src.Running {
		t.Fatalf("hostA record still marked running after follow-me: %+v", src)
	}
}

// TestFederatedDaemonsGossip boots a federated center and two daemons in
// federated mode, then waits for gossip to converge: hostA has no -peer,
// so it can only learn of hostB through hostB's SWIM probes.
func TestFederatedDaemonsGossip(t *testing.T) {
	reg, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	node, err := transport.ListenTCP("registry@lab", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	reg.Serve(node.Endpoint())

	var outA, outB syncBuffer
	addrA := startDaemon(t, &outA,
		"-host", "hostA", "-listen", "127.0.0.1:0",
		"-registry", node.Addr(), "-space", "lab",
		"-probe", "5ms", "-suspicion", "50ms")
	_ = startDaemon(t, &outB,
		"-host", "hostB", "-listen", "127.0.0.1:0",
		"-registry", node.Addr(), "-space", "lab",
		"-peer", "hostA="+addrA,
		"-probe", "5ms", "-suspicion", "50ms")

	deadline := time.Now().Add(10 * time.Second)
	for {
		if strings.Contains(outA.String(), "member hostB -> alive") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hostA never learned hostB via gossip:\n%s", outA.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunRejectsBadFlags covers the flag-parsing surface.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, nil, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-install", "bogus"}, &out, nil, nil); err == nil {
		t.Fatal("unknown -install accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-run", "bogus"}, &out, nil, nil); err == nil {
		t.Fatal("unknown -run accepted")
	}
}

// TestDaemonReplicatesStateOverTCP boots a federated center and one
// daemon with -replicate, then watches the daemon's snapshot arrive at
// the center over the wire protocol — and reads it back through a
// SnapshotClient, the same path a remote failover planner would use.
func TestDaemonReplicatesStateOverTCP(t *testing.T) {
	reg, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	node, err := transport.ListenTCP("registry@lab", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	center := cluster.NewCenter("lab", reg, node.Endpoint(), cluster.Config{})
	center.Serve(node.Endpoint())

	var outA syncBuffer
	startDaemon(t, &outA,
		"-host", "hostA", "-listen", "127.0.0.1:0",
		"-registry", node.Addr(), "-space", "lab",
		"-run", "smart-media-player", "-song-bytes", "100000",
		"-replicate", "5ms")

	deadline := time.Now().Add(10 * time.Second)
	for {
		if rec, ok := center.LatestSnapshot("smart-media-player"); ok {
			ts, err := rec.Snapshot()
			if err != nil {
				t.Fatalf("replicated record does not reassemble: %v", err)
			}
			if ts.Wrap.App != "smart-media-player" || rec.Host != "hostA" {
				t.Fatalf("unexpected record: app=%q host=%q", ts.Wrap.App, rec.Host)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never replicated over TCP:\n%s", outA.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Read it back over the wire, as a remote restore would.
	probe, err := transport.ListenTCP("probe@test", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { probe.Close() })
	probe.AddPeer("registry@lab", node.Addr())
	cli := cluster.NewSnapshotClient(probe.Endpoint(), "registry@lab")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec, found, err := cli.LatestSnapshot(ctx, "smart-media-player")
	if err != nil || !found {
		t.Fatalf("remote snapshot fetch: found=%v err=%v", found, err)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("fetched record fails verification: %v", err)
	}
}
