package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildBinaries compiles mdregistry, mdagentd, and mdctl once into a
// temp dir — the e2e below drives the real executables over real TCP,
// exactly as an operator would.
func buildBinaries(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := make(map[string]string)
	for _, name := range []string{"mdregistry", "mdagentd", "mdctl"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "mdagent/cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

// lineWaiter tees a process's stdout into a transcript and signals
// waiters when a line containing their substring appears.
type lineWaiter struct {
	mu    sync.Mutex
	lines []string
	subs  []chan string // waiters snapshot-checked on every line
	wants []string
}

func (w *lineWaiter) consume(t *testing.T, tag string, r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		t.Logf("[%s] %s", tag, line)
		w.mu.Lock()
		w.lines = append(w.lines, line)
		for i, want := range w.wants {
			if want != "" && strings.Contains(line, want) {
				w.wants[i] = ""
				w.subs[i] <- line
			}
		}
		w.mu.Unlock()
	}
}

func (w *lineWaiter) waitFor(t *testing.T, substr string, timeout time.Duration) string {
	t.Helper()
	ch := make(chan string, 1)
	w.mu.Lock()
	for _, line := range w.lines {
		if strings.Contains(line, substr) {
			w.mu.Unlock()
			return line
		}
	}
	w.subs = append(w.subs, ch)
	w.wants = append(w.wants, substr)
	w.mu.Unlock()
	select {
	case line := <-ch:
		return line
	case <-time.After(timeout):
		w.mu.Lock()
		defer w.mu.Unlock()
		t.Fatalf("no %q line within %v; transcript:\n%s", substr, timeout, strings.Join(w.lines, "\n"))
		return ""
	}
}

// startProc launches a daemon binary, streams its output into the test
// log, and kills it at cleanup.
func startProc(t *testing.T, tag, bin string, args ...string) *lineWaiter {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", tag, err)
	}
	w := &lineWaiter{}
	go w.consume(t, tag, stdout)
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return w
}

// addrFromLine extracts the "on <addr>" address a daemon prints when
// bound.
func addrFromLine(t *testing.T, line string) string {
	t.Helper()
	idx := strings.Index(line, " on ")
	if idx < 0 {
		t.Fatalf("no address in line %q", line)
	}
	rest := line[idx+4:]
	if sp := strings.IndexAny(rest, " ,"); sp >= 0 {
		rest = rest[:sp]
	}
	return rest
}

// mdctl runs the CLI binary against a server and returns its combined
// output.
func mdctl(t *testing.T, bin, server string, args ...string) string {
	t.Helper()
	full := append([]string{"-server", server, "-timeout", "30s"}, args...)
	cmd := exec.Command(bin, full...)
	out, err := cmd.CombinedOutput()
	t.Logf("[mdctl %s] %s", strings.Join(args, " "), out)
	if err != nil {
		t.Fatalf("mdctl %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestCtlE2EOverTCP is the control plane's smoke test against the real
// binaries: one federated mdregistry plus two mdagentd over localhost
// TCP, a migration driven by mdctl, and a typed migrated event arriving
// on `mdctl watch -json` — the CI e2e job runs exactly this.
func TestCtlE2EOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs real binaries")
	}
	bins := buildBinaries(t)

	reg := startProc(t, "mdregistry", bins["mdregistry"], "-listen", "127.0.0.1:0", "-space", "lab",
		"-store", filepath.Join(t.TempDir(), "registry"),
		"-debug-addr", "127.0.0.1:0")
	regAddr := addrFromLine(t, reg.waitFor(t, "serving registry@lab on ", 10*time.Second))
	regDebug := addrFromLine(t, reg.waitFor(t, "debug on ", 10*time.Second))

	destOut := startProc(t, "mdagentd-B", bins["mdagentd"],
		"-host", "hostB", "-listen", "127.0.0.1:0", "-registry", regAddr,
		"-space", "lab", "-replicate", "10ms", "-install", "smart-media-player",
		"-debug-addr", "127.0.0.1:0")
	debugB := addrFromLine(t, destOut.waitFor(t, "debug on ", 10*time.Second))
	addrB := addrFromLine(t, destOut.waitFor(t, "serving on ", 10*time.Second))

	srcOut := startProc(t, "mdagentd-A", bins["mdagentd"],
		"-host", "hostA", "-listen", "127.0.0.1:0", "-registry", regAddr,
		"-space", "lab", "-replicate", "10ms", "-peer", "hostB="+addrB,
		"-run", "smart-media-player", "-song-bytes", "100000",
		"-debug-addr", "127.0.0.1:0")
	debugA := addrFromLine(t, srcOut.waitFor(t, "debug on ", 10*time.Second))
	addrA := addrFromLine(t, srcOut.waitFor(t, "serving on ", 10*time.Second))

	// Debug endpoints on every daemon: /healthz answers 200 and /metrics
	// serves a non-empty Prometheus exposition of mdagent_* series.
	for _, dbg := range []struct{ tag, addr string }{
		{"mdregistry", regDebug}, {"mdagentd-B", debugB}, {"mdagentd-A", debugA},
	} {
		if body := debugGet(t, dbg.addr, "/healthz"); !strings.Contains(body, "ok") {
			t.Fatalf("%s /healthz body: %q", dbg.tag, body)
		}
		if body := debugGet(t, dbg.addr, "/metrics"); !strings.Contains(body, "mdagent_") {
			t.Fatalf("%s /metrics exposition empty or missing mdagent series:\n%s", dbg.tag, body)
		}
	}
	// The durable registry runs the PR 8 storage engine; its /metrics
	// exposition must carry the mdagent_store_* series.
	if body := debugGet(t, regDebug, "/metrics"); !strings.Contains(body, "mdagent_store_") {
		t.Fatalf("mdregistry /metrics missing mdagent_store_* series:\n%s", body)
	}

	// Introspection against the live daemons.
	if out := mdctl(t, bins["mdctl"], addrA, "info"); !strings.Contains(out, "role host") {
		t.Fatalf("info output: %s", out)
	}
	if out := mdctl(t, bins["mdctl"], regAddr, "info"); !strings.Contains(out, "role registry") {
		t.Fatalf("registry info output: %s", out)
	}
	if out := mdctl(t, bins["mdctl"], addrA, "members"); !strings.Contains(out, "hostB") {
		t.Fatalf("members output misses hostB: %s", out)
	}
	out := mdctl(t, bins["mdctl"], addrA, "ps")
	if !strings.Contains(out, "smart-media-player") || !strings.Contains(out, "hostA") {
		t.Fatalf("ps output: %s", out)
	}

	// Stream typed events in the background, then drive the migration.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	watchCmd := exec.CommandContext(ctx, bins["mdctl"],
		"-server", addrA, "-json", "watch", "-count", "1", "-filter", "app.migrated")
	var watchOut bytes.Buffer
	watchPipe, err := watchCmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := watchCmd.Start(); err != nil {
		t.Fatal(err)
	}
	watchReady := make(chan struct{})
	watchDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(watchPipe)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("[watch] %s", line)
			watchOut.WriteString(line + "\n")
			if strings.Contains(line, "watching") {
				close(watchReady)
			}
		}
		watchDone <- watchCmd.Wait()
	}()
	select {
	case <-watchReady:
	case <-time.After(15 * time.Second):
		t.Fatal("watch never reported its subscription")
	}

	out = mdctl(t, bins["mdctl"], addrA, "migrate", "smart-media-player", "hostB")
	if !strings.Contains(out, "migrated smart-media-player -> hostB") {
		t.Fatalf("migrate output: %s", out)
	}

	select {
	case err := <-watchDone:
		if err != nil {
			t.Fatalf("watch exited: %v\n%s", err, watchOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("watch never delivered the migrated event\n%s", watchOut.String())
	}
	// The event line is machine-readable JSON with the typed attrs.
	var event struct {
		Topic string            `json:"topic"`
		Attrs map[string]string `json:"attrs"`
	}
	found := false
	for _, line := range strings.Split(watchOut.String(), "\n") {
		if !strings.Contains(line, `"topic"`) {
			continue
		}
		if err := json.Unmarshal([]byte(line), &event); err != nil {
			t.Fatalf("unparseable watch line %q: %v", line, err)
		}
		found = true
	}
	if !found || event.Topic != "app.migrated" || event.Attrs["dest"] != "hostB" || event.Attrs["app"] != "smart-media-player" {
		t.Fatalf("watch event = %+v (found=%v)", event, found)
	}

	// The migration trace: the source host holds the complete five-phase
	// timeline (its own suspend/capture/transfer spans plus the
	// destination's restore/rebind spans merged from the checkin reply),
	// and the destination's log holds the same trace id.
	traceA := traceJSON(t, bins["mdctl"], addrA)
	if traceA.ID == "" || traceA.From != "hostA" || traceA.To != "hostB" {
		t.Fatalf("source trace header: %+v", traceA)
	}
	wantPhases := []struct{ phase, host string }{
		{"suspend", "hostA"}, {"capture", "hostA"}, {"transfer", "hostA"},
		{"restore", "hostB"}, {"rebind", "hostB"},
	}
	if len(traceA.Spans) != len(wantPhases) {
		t.Fatalf("source trace has %d spans, want %d: %+v", len(traceA.Spans), len(wantPhases), traceA.Spans)
	}
	for i, want := range wantPhases {
		sp := traceA.Spans[i]
		if sp.Phase != want.phase || sp.Host != want.host {
			t.Fatalf("span %d = %s@%s, want %s@%s", i, sp.Phase, sp.Host, want.phase, want.host)
		}
		if sp.Trace != traceA.ID {
			t.Fatalf("span %d carries trace %q, want %q", i, sp.Trace, traceA.ID)
		}
		if i > 0 && sp.Start.Before(traceA.Spans[i-1].Start) {
			t.Fatalf("timeline not monotonic: %s starts %v before %s",
				sp.Phase, traceA.Spans[i-1].Start.Sub(sp.Start), traceA.Spans[i-1].Phase)
		}
	}
	traceB := traceJSON(t, bins["mdctl"], addrB)
	if traceB.ID != traceA.ID {
		t.Fatalf("destination trace id %q != source trace id %q", traceB.ID, traceA.ID)
	}
	// The human-readable form prints the full timeline too.
	if out := mdctl(t, bins["mdctl"], addrA, "trace", "smart-media-player"); !strings.Contains(out, "complete: true") {
		t.Fatalf("text trace not complete:\n%s", out)
	}

	// The destination now owns the running record; snapshot heads for it
	// appear at the center once hostB's replicator publishes.
	deadline := time.Now().Add(20 * time.Second)
	for {
		psOut := mdctl(t, bins["mdctl"], addrB, "ps")
		if hostBRunning(psOut) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hostB never listed the migrated app running:\n%s", psOut)
		}
		time.Sleep(200 * time.Millisecond)
	}
	for {
		snapOut := mdctl(t, bins["mdctl"], regAddr, "snapshots")
		if strings.Contains(snapOut, "smart-media-player") && strings.Contains(snapOut, "hostB") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("center never listed a hostB snapshot head")
		}
		time.Sleep(200 * time.Millisecond)
	}
	if out := mdctl(t, bins["mdctl"], addrB, "stats"); !strings.Contains(out, "hostB") {
		t.Fatalf("stats output: %s", out)
	}

	// Graceful stop through the control plane.
	mdctl(t, bins["mdctl"], addrB, "stop", "smart-media-player")
	psOut := mdctl(t, bins["mdctl"], addrB, "ps")
	if hostBRunning(psOut) {
		t.Fatalf("app still running on hostB after mdctl stop:\n%s", psOut)
	}

	// Bounded dissemination end to end: gossip payload stays O(1) per
	// message as the membership grows. Meter hostA's gossip counters,
	// attach a third daemon, wait for the join to land, let the probe
	// cadence run, and re-meter: the per-message payload of the new
	// traffic must stay under the bounded ceiling, nowhere near a
	// full-table exchange.
	bytes0, msgs0 := gossipMeters(t, debugA)
	hostC := startProc(t, "mdagentd-C", bins["mdagentd"],
		"-host", "hostC", "-listen", "127.0.0.1:0", "-registry", regAddr,
		"-space", "lab", "-peer", "hostA="+addrA,
		"-debug-addr", "127.0.0.1:0")
	hostC.waitFor(t, "serving on ", 10*time.Second)
	deadline = time.Now().Add(20 * time.Second)
	for {
		if out := mdctl(t, bins["mdctl"], addrA, "members"); strings.Contains(out, "hostC") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hostA never learned hostC through gossip")
		}
		time.Sleep(200 * time.Millisecond)
	}
	time.Sleep(1500 * time.Millisecond) // ~15 probe rounds of post-join gossip
	bytes1, msgs1 := gossipMeters(t, debugA)
	if msgs1 <= msgs0 {
		t.Fatalf("no gossip messages after hostC joined (msgs %d -> %d)", msgs0, msgs1)
	}
	perMsg := float64(bytes1-bytes0) / float64(msgs1-msgs0)
	if perMsg <= 0 || perMsg > 2048 {
		t.Fatalf("gossip payload %0.f bytes/msg after join (Δbytes=%d Δmsgs=%d), want bounded (0, 2048]",
			perMsg, bytes1-bytes0, msgs1-msgs0)
	}
	t.Logf("gossip after hostC joined: %.0f bytes/msg over %d messages", perMsg, msgs1-msgs0)
}

// gossipMeters scrapes a daemon's /metrics exposition for its gossip
// byte and message counters.
func gossipMeters(t *testing.T, debugAddr string) (bytes, msgs int64) {
	t.Helper()
	body := debugGet(t, debugAddr, "/metrics")
	for _, line := range strings.Split(body, "\n") {
		var into *int64
		switch {
		case strings.HasPrefix(line, "mdagent_gossip_bytes_total"):
			into = &bytes
		case strings.HasPrefix(line, "mdagent_gossip_msgs_total"):
			into = &msgs
		default:
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q: %v", line, err)
		}
		*into += v
	}
	return bytes, msgs
}

// debugGet fetches a path from a daemon's -debug-addr server, failing
// the test on any non-200 answer.
func debugGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s%s read: %v", addr, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s%s: status %d\n%s", addr, path, resp.StatusCode, body)
	}
	return string(body)
}

// migrationTrace mirrors obs.MigrationTrace's JSON shape for the e2e
// assertions.
type migrationTrace struct {
	ID    string
	App   string
	From  string
	To    string
	Spans []struct {
		Trace string
		Phase string
		Host  string
		Start time.Time
		Dur   time.Duration
	}
}

// traceJSON runs `mdctl -json trace smart-media-player` and parses it.
func traceJSON(t *testing.T, bin, server string) migrationTrace {
	t.Helper()
	out := mdctl(t, bin, server, "-json", "trace", "smart-media-player")
	var tr migrationTrace
	if err := json.Unmarshal([]byte(out), &tr); err != nil {
		t.Fatalf("unparseable trace JSON: %v\n%s", err, out)
	}
	return tr
}

// hostBRunning reports a ps table row with the app running on hostB.
func hostBRunning(psOut string) bool {
	for _, line := range strings.Split(psOut, "\n") {
		if strings.Contains(line, "smart-media-player") &&
			strings.Contains(line, "hostB") && strings.Contains(line, "true") {
			return true
		}
	}
	return false
}

// TestRunRejectsBadArgs pins the CLI's argument validation.
func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-server", "127.0.0.1:1"}, &buf, nil); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run([]string{"-server", "127.0.0.1:1", "bogus-command"}, &buf, nil); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"-server", "127.0.0.1:1", "migrate", "only-app"}, &buf, nil); err == nil {
		t.Fatal("migrate without dest accepted")
	}
	if err := run([]string{"-server", "127.0.0.1:1", "run"}, &buf, nil); err == nil {
		t.Fatal("run without app accepted")
	}
}
