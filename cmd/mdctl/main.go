// Command mdctl is the operator CLI for MDAgent's versioned control
// plane. It speaks the typed ctl protocol to any serving daemon —
// mdagentd (host lifecycle, membership, stats) or mdregistry (registry
// views, snapshot heads, durability events) — addressed only by its
// listen address: every control-plane server answers the well-known
// "ctl" endpoint alias.
//
//	mdctl -server 127.0.0.1:7002 info
//	mdctl -server 127.0.0.1:7002 members
//	mdctl -server 127.0.0.1:7002 ps
//	mdctl -server 127.0.0.1:7001 snapshots
//	mdctl -server 127.0.0.1:7002 stats
//	mdctl -server 127.0.0.1:7002 run smart-media-player
//	mdctl -server 127.0.0.1:7002 migrate smart-media-player hostB
//	mdctl -server 127.0.0.1:7002 stop smart-media-player
//	mdctl -server 127.0.0.1:7002 watch -filter 'cluster.*'
//	mdctl -server 127.0.0.1:7002 -json watch -count 1 -filter app.migrated
//
// -json emits machine-readable output: one JSON document per command,
// or one JSON object per line for watch. watch streams server-pushed
// typed events until interrupted, -count events arrive, or -for
// elapses.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"mdagent/internal/ctl"
	"mdagent/internal/transport"
)

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	switch err := run(os.Args[1:], os.Stdout, stop); {
	case err == nil, errors.Is(err, flag.ErrHelp):
	default:
		log.Fatalf("mdctl: %v", err)
	}
}

const usage = `usage: mdctl [flags] <command> [args]

commands:
  info                      describe the server (role, host, space, protocol)
  members                   list the gossip membership view with incarnations
  ps                        list application records with snapshot metadata
  snapshots                 list replicated snapshot heads (chain, durability)
  stats                     replication counters per host
  metrics                   dump the server's obs metrics registry
  trace <app>               print the app's latest migration timeline
  run <app>                 run an installed application skeleton
  stop <app>                gracefully stop a running application
  install <app>             install an application skeleton
  migrate <app> <dest>      follow-me a running application to dest host
  bundle <subcommand>       pack, inspect, push, list, and install signed app
                            bundles (run "mdctl bundle" for subcommand help)
  watch                     stream typed events (see -filter, -count, -for, -from-seq)
`

// run is the testable body of mdctl.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("mdctl", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Usage = func() { fmt.Fprint(out, usage); fs.PrintDefaults() }
	server := fs.String("server", "127.0.0.1:7002", "control-plane server address (an mdagentd or mdregistry -listen address)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	jsonOut := fs.Bool("json", false, "machine-readable JSON output (watch: one object per line)")
	filter := fs.String("filter", "*", "watch: topic pattern — exact topic, \"prefix.*\", or \"*\"")
	count := fs.Int("count", 0, "watch: exit after this many events (0 = until interrupted)")
	forDur := fs.Duration("for", 0, "watch: exit after this duration (0 = until interrupted)")
	fromSeq := fs.Uint64("from-seq", 0, "watch: replay the stream from this sequence number (0 = live from now; needs a v2 server)")
	static := fs.Bool("static", false, "migrate: static (whole-app) binding instead of adaptive")
	host := fs.String("host", "", "run/stop/install: target host (default: the serving host)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := fs.Arg(0)
	if cmd == "" {
		fs.Usage()
		return fmt.Errorf("missing command")
	}
	// Flags may also follow the subcommand (mdctl watch -count 1).
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return err
	}

	// The CLI is itself a transport node: it dials the server's address
	// and addresses the well-known ctl alias; watch pushes flow back on
	// the same connection (the server's learned reply route).
	name := fmt.Sprintf("mdctl-%d-%d", os.Getpid(), time.Now().UnixNano()%100000)
	node, err := transport.ListenTCP(name, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer node.Close()
	node.AddPeer(ctl.Alias, *server)
	cli := ctl.NewClient(node.Endpoint(), ctl.Alias)
	// -timeout also bounds watch's subscribe request (the stream itself
	// runs until interrupted / -count / -for).
	cli.SubscribeTimeout = *timeout

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	emit := func(v any) error {
		if !*jsonOut {
			return nil
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}

	switch cmd {
	case "info":
		info, err := cli.Info(ctx)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(info)
		}
		fmt.Fprintf(out, "role %s proto %d host %q space %q\n", info.Role, info.Proto, info.Host, info.Space)
		return nil

	case "members":
		members, err := cli.Members(ctx)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(members)
		}
		fmt.Fprintf(out, "%-16s %-12s %-8s %s\n", "HOST", "SPACE", "STATE", "INCARNATION")
		for _, m := range members {
			fmt.Fprintf(out, "%-16s %-12s %-8s %d\n", m.ID, m.Space, m.State, m.Incarnation)
		}
		return nil

	case "ps":
		apps, err := cli.Apps(ctx)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(apps)
		}
		fmt.Fprintf(out, "%-24s %-14s %-10s %-8s %-22s %s\n", "APP", "HOST", "SPACE", "RUNNING", "SNAPSHOT", "COMPONENTS")
		for _, a := range apps {
			snap := "-"
			if a.Snapshot != nil {
				durable := ""
				if a.Snapshot.Durable {
					durable = " durable"
				}
				snap = fmt.Sprintf("seq %d +%dΔ%s", a.Snapshot.Seq, a.Snapshot.Chain, durable)
			}
			fmt.Fprintf(out, "%-24s %-14s %-10s %-8v %-22s %s\n",
				a.Name, a.Host, a.Space, a.Running, snap, strings.Join(a.Components, ","))
		}
		return nil

	case "snapshots":
		heads, err := cli.Snapshots(ctx)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(heads)
		}
		fmt.Fprintf(out, "%-24s %-14s %-10s %-6s %-6s %-6s %-10s %s\n", "APP", "HOST", "SPACE", "SEQ", "BASE", "CHAIN", "BYTES", "DURABLE")
		for _, h := range heads {
			fmt.Fprintf(out, "%-24s %-14s %-10s %-6d %-6d %-6d %-10d %v\n",
				h.App, h.Host, h.Space, h.Seq, h.BaseSeq, h.Chain, h.Bytes, h.Durable)
		}
		return nil

	case "stats":
		stats, err := cli.Stats(ctx)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(stats)
		}
		fmt.Fprintf(out, "%-14s %-9s %-6s %-7s %-10s %-13s %-11s %s\n",
			"HOST", "PUBLISHES", "FULL", "DELTA", "BYTES", "SKIPPED-CLEAN", "REBASELINES", "NOT-DURABLE")
		for _, s := range stats {
			fmt.Fprintf(out, "%-14s %-9d %-6d %-7d %-10d %-13d %-11d %d\n",
				s.Host, s.Stats.Publishes, s.Stats.FullFrames, s.Stats.DeltaFrames,
				s.Stats.BytesPublished, s.Stats.SkippedClean, s.Stats.Rebaselines, s.Stats.NotDurable)
		}
		return nil

	case "metrics":
		samples, err := cli.Metrics(ctx)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(samples)
		}
		fmt.Fprintf(out, "%-58s %-10s %s\n", "METRIC", "TYPE", "VALUE")
		for _, s := range samples {
			val := fmt.Sprintf("%d", s.Value)
			if s.Type == "histogram" {
				val = fmt.Sprintf("count %d mean %v", s.Count, s.Mean())
			}
			fmt.Fprintf(out, "%-58s %-10s %s\n", s.ID(), s.Type, val)
		}
		return nil

	case "trace":
		appName := fs.Arg(0)
		if appName == "" {
			return fmt.Errorf("usage: mdctl trace <app>")
		}
		tr, err := cli.Trace(ctx, appName)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(tr)
		}
		route := ""
		if tr.From != "" || tr.To != "" {
			route = fmt.Sprintf(" %s -> %s", tr.From, tr.To)
		}
		fmt.Fprintf(out, "trace %s app %s%s (complete: %v)\n", tr.ID, tr.App, route, tr.Complete())
		fmt.Fprintf(out, "%-10s %-14s %-12s %-14s %s\n", "PHASE", "HOST", "OFFSET", "DURATION", "NOTE")
		for _, sp := range tr.Spans {
			fmt.Fprintf(out, "%-10s %-14s %-12v %-14v %s\n",
				sp.Phase, sp.Host, sp.Start.Sub(tr.Start).Round(time.Microsecond), sp.Dur.Round(time.Microsecond), sp.Note)
		}
		return nil

	case "run", "stop", "install":
		appName := fs.Arg(0)
		if appName == "" {
			return fmt.Errorf("usage: mdctl %s <app>", cmd)
		}
		var opErr error
		switch cmd {
		case "run":
			opErr = cli.RunApp(ctx, appName, *host)
		case "stop":
			opErr = cli.StopApp(ctx, appName, *host)
		case "install":
			opErr = cli.InstallApp(ctx, appName, *host)
		}
		if opErr != nil {
			// An install refused with the typed unknown-app sentinel gets
			// the remedy spelled out: the host has neither a compiled-in
			// skeleton nor a pushed bundle for this name.
			if cmd == "install" && errors.Is(opErr, ctl.ErrUnknownApp) {
				hint := fmt.Sprintf("no skeleton or bundle for %q on the server; pack and push one first: "+
					"mdctl bundle pack -spec app.json -key publisher.key -out app.mdab, then mdctl bundle push app.mdab", appName)
				if *jsonOut {
					_ = emit(map[string]string{"op": cmd, "app": appName, "result": "error", "error": opErr.Error(), "hint": hint})
				}
				return fmt.Errorf("%w\n  hint: %s", opErr, hint)
			}
			if *jsonOut {
				_ = emit(map[string]string{"op": cmd, "app": appName, "result": "error", "error": opErr.Error()})
			}
			return opErr
		}
		if *jsonOut {
			return emit(map[string]string{"op": cmd, "app": appName, "result": "ok"})
		}
		fmt.Fprintf(out, "%s %s: ok\n", cmd, appName)
		return nil

	case "migrate":
		appName, dest := fs.Arg(0), fs.Arg(1)
		if appName == "" || dest == "" {
			return fmt.Errorf("usage: mdctl migrate <app> <dest-host>")
		}
		res, err := cli.Migrate(ctx, ctl.MigrateRequest{App: appName, To: dest, Static: *static})
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(res)
		}
		fmt.Fprintf(out, "migrated %s -> %s: suspend %v, migrate %v, resume %v, total %v, %d bytes (delta: %v)\n",
			res.App, res.To, res.Suspend, res.Migrate, res.Resume, res.Total(), res.BytesMoved, res.Delta)
		return nil

	case "bundle":
		// After the re-parse above, fs.Args() starts at the subcommand.
		return bundleCmd(ctx, fs.Args(), cli, out, *jsonOut, *host)

	case "watch":
		return watch(cli, out, stop, *jsonOut, *filter, *count, *forDur, *fromSeq)
	}
	fs.Usage()
	return fmt.Errorf("unknown command %q", cmd)
}

// watchLine is the machine-readable form of one streamed event.
type watchLine struct {
	Topic  string            `json:"topic"`
	Source string            `json:"source,omitempty"`
	At     time.Time         `json:"at"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Seq    uint64            `json:"seq,omitempty"`
	Lost   uint64            `json:"lost,omitempty"`
}

// watch streams events until stop closes, n events arrived (n > 0), or
// d elapsed (d > 0). fromSeq > 0 asks the server to replay from that
// sequence number; a server that cannot honor it (pre-v2, or the ring
// aged the seq out) degrades to a live watch with a warning rather than
// failing — the operator asked to see events, not to see an exit code.
func watch(cli *ctl.Client, out io.Writer, stop <-chan struct{}, jsonOut bool, pattern string, n int, d time.Duration, fromSeq uint64) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	events, err := cli.WatchFrom(ctx, pattern, fromSeq)
	if fromSeq > 0 && (errors.Is(err, ctl.ErrReplayGap) || errors.Is(err, ctl.ErrUnsupported)) {
		fmt.Fprintf(os.Stderr, "mdctl: replay from seq %d unavailable (%v); watching live from now\n", fromSeq, err)
		events, err = cli.Watch(ctx, pattern)
	}
	if err != nil {
		return err
	}
	// The subscription is live once Watch returns; announce it so
	// scripts (and the e2e suite) can sequence actions after it.
	enc := json.NewEncoder(out)
	if jsonOut {
		if err := enc.Encode(map[string]string{"watching": pattern}); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "watching %s\n", pattern)
	}
	seen := 0
	for ev := range events {
		if jsonOut {
			if err := enc.Encode(watchLine{
				Topic: ev.Event.Topic, Source: ev.Event.Source,
				At: ev.Event.At, Attrs: ev.Event.Attrs, Seq: ev.Seq, Lost: ev.Lost,
			}); err != nil {
				return err
			}
		} else {
			keys := make([]string, 0, len(ev.Event.Attrs))
			for k := range ev.Event.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var sb strings.Builder
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%s", k, ev.Event.Attrs[k])
			}
			lost := ""
			if ev.Lost > 0 {
				lost = fmt.Sprintf(" (lost %d)", ev.Lost)
			}
			fmt.Fprintf(out, "%s %s%s%s\n", ev.Event.At.Format(time.RFC3339Nano), ev.Event.Topic, sb.String(), lost)
		}
		seen++
		if n > 0 && seen >= n {
			return nil
		}
	}
	return nil
}
