package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// mdctlFail runs the CLI binary expecting a non-zero exit, returning
// the combined output for refusal-text assertions.
func mdctlFail(t *testing.T, bin, server string, args ...string) string {
	t.Helper()
	full := append([]string{"-server", server, "-timeout", "30s"}, args...)
	cmd := exec.Command(bin, full...)
	out, err := cmd.CombinedOutput()
	t.Logf("[mdctl %s] %s", strings.Join(args, " "), out)
	if err == nil {
		t.Fatalf("mdctl %v unexpectedly succeeded:\n%s", args, out)
	}
	return string(out)
}

// bundleMeter scrapes one mdagent_bundle_* counter from a daemon's
// /metrics exposition.
func bundleMeter(t *testing.T, debugAddr, name string) int64 {
	t.Helper()
	var total int64
	for _, line := range strings.Split(debugGet(t, debugAddr, "/metrics"), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q: %v", line, err)
		}
		total += v
	}
	return total
}

// TestBundleE2EOverTCP proves the portable-bundle path over the real
// binaries and real TCP: keygen and pack with mdctl, push through a
// trusted mdregistry, install on two mdagentd hosts that have no
// compiled-in factory for the app, run and migrate the instance, and
// refuse an identically-shaped bundle signed by an untrusted key — the
// CI e2e job runs exactly this.
func TestBundleE2EOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs real binaries")
	}
	bins := buildBinaries(t)
	dir := t.TempDir()

	// Publisher and rogue keypairs, minted by the CLI itself.
	mdctl(t, bins["mdctl"], "127.0.0.1:1", "bundle", "keygen", "-out", filepath.Join(dir, "publisher"))
	mdctl(t, bins["mdctl"], "127.0.0.1:1", "bundle", "keygen", "-out", filepath.Join(dir, "rogue"))
	pubHex, err := os.ReadFile(filepath.Join(dir, "publisher.pub"))
	if err != nil {
		t.Fatal(err)
	}
	trustKey := strings.TrimSpace(string(pubHex))

	// The app ships entirely as a bundle: two components, seeded state,
	// and a secret carried by reference — resolved from the daemon's
	// environment at install time, never stored in the artifact.
	spec := filepath.Join(dir, "notepad.json")
	if err := os.WriteFile(spec, []byte(`{
		"app": "bundled-notepad",
		"doc": "portable notepad distributed as a signed bundle",
		"components": [
			{"name": "notes", "kind": "state"},
			{"name": "attachment", "kind": "data"}
		],
		"secrets": [{"key": "api-token", "ref": "ref://env/NOTEPAD_TOKEN"}],
		"state": {"notes": {"line1": "hello from the bundle"}},
		"data": {"attachment": "attachment-payload-0123456789"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("NOTEPAD_TOKEN", "s3cret-from-env")

	goodBundle := filepath.Join(dir, "notepad.mdab")
	mdctl(t, bins["mdctl"], "127.0.0.1:1", "bundle", "pack",
		"-spec", spec, "-key", filepath.Join(dir, "publisher.key"), "-out", goodBundle)
	rogueBundle := filepath.Join(dir, "rogue.mdab")
	mdctl(t, bins["mdctl"], "127.0.0.1:1", "bundle", "pack",
		"-spec", spec, "-key", filepath.Join(dir, "rogue.key"), "-out", rogueBundle)

	// The secret must not appear in the packed artifact.
	rawBundle, err := os.ReadFile(goodBundle)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rawBundle), "s3cret-from-env") {
		t.Fatal("packed bundle contains the resolved secret value")
	}

	reg := startProc(t, "mdregistry", bins["mdregistry"], "-listen", "127.0.0.1:0", "-space", "lab",
		"-store", filepath.Join(t.TempDir(), "registry"),
		"-trust-key", trustKey, "-debug-addr", "127.0.0.1:0")
	regAddr := addrFromLine(t, reg.waitFor(t, "serving registry@lab on ", 10*time.Second))
	regDebug := addrFromLine(t, reg.waitFor(t, "debug on ", 10*time.Second))

	outB := startProc(t, "mdagentd-B", bins["mdagentd"],
		"-host", "hostB", "-listen", "127.0.0.1:0", "-registry", regAddr,
		"-space", "lab", "-trust-key", trustKey, "-debug-addr", "127.0.0.1:0")
	debugB := addrFromLine(t, outB.waitFor(t, "debug on ", 10*time.Second))
	addrB := addrFromLine(t, outB.waitFor(t, "serving on ", 10*time.Second))

	outA := startProc(t, "mdagentd-A", bins["mdagentd"],
		"-host", "hostA", "-listen", "127.0.0.1:0", "-registry", regAddr,
		"-space", "lab", "-peer", "hostB="+addrB,
		"-trust-key", trustKey, "-debug-addr", "127.0.0.1:0")
	debugA := addrFromLine(t, outA.waitFor(t, "debug on ", 10*time.Second))
	addrA := addrFromLine(t, outA.waitFor(t, "serving on ", 10*time.Second))

	// Before any push: install is the typed unknown-app refusal with a
	// hint pointing at the bundle workflow, and errors.Is survived the
	// wire (the CLI matched ctl.ErrUnknownApp to print the hint).
	out := mdctlFail(t, bins["mdctl"], addrA, "install", "bundled-notepad")
	if !strings.Contains(out, "unknown application") || !strings.Contains(out, "mdctl bundle push") {
		t.Fatalf("install refusal missing typed error or hint:\n%s", out)
	}

	// An untrusted signature dies at the registry, typed.
	out = mdctlFail(t, bins["mdctl"], regAddr, "bundle", "push", rogueBundle)
	if !strings.Contains(out, "signing key is not trusted") {
		t.Fatalf("rogue push refusal not typed:\n%s", out)
	}
	if n := bundleMeter(t, regDebug, "mdagent_bundle_rejected_total"); n < 1 {
		t.Fatalf("registry rejected counter = %d after rogue push, want >= 1", n)
	}

	// The trusted bundle pushes once and is listed.
	if out := mdctl(t, bins["mdctl"], regAddr, "bundle", "push", goodBundle); !strings.Contains(out, "pushed bundled-notepad") {
		t.Fatalf("push output: %s", out)
	}
	if out := mdctl(t, bins["mdctl"], regAddr, "bundle", "list"); !strings.Contains(out, "bundled-notepad") {
		t.Fatalf("bundle list output: %s", out)
	}

	// Both hosts install from the stored bundle — neither has a
	// compiled-in factory for bundled-notepad.
	mdctl(t, bins["mdctl"], addrA, "bundle", "install", "bundled-notepad")
	mdctl(t, bins["mdctl"], addrB, "bundle", "install", "bundled-notepad")

	// Run on hostA and check the instance through ps -json: the manifest
	// components came back exactly.
	mdctl(t, bins["mdctl"], addrA, "run", "bundled-notepad")
	var apps []struct {
		Name       string   `json:"Name"`
		Host       string   `json:"Host"`
		Running    bool     `json:"Running"`
		Components []string `json:"Components"`
	}
	psOut := mdctl(t, bins["mdctl"], addrA, "-json", "ps")
	if err := json.Unmarshal([]byte(psOut), &apps); err != nil {
		t.Fatalf("unparseable ps JSON: %v\n%s", err, psOut)
	}
	found := false
	for _, a := range apps {
		if a.Name == "bundled-notepad" && a.Host == "hostA" && a.Running {
			found = true
			if got := strings.Join(a.Components, ","); got != "notes,attachment" {
				t.Fatalf("instance components = %q, want notes,attachment", got)
			}
		}
	}
	if !found {
		t.Fatalf("ps never listed bundled-notepad running on hostA:\n%s", psOut)
	}

	// The bundled instance migrates like a native one.
	if out := mdctl(t, bins["mdctl"], addrA, "migrate", "bundled-notepad", "hostB"); !strings.Contains(out, "migrated bundled-notepad -> hostB") {
		t.Fatalf("migrate output: %s", out)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		psOut := mdctl(t, bins["mdctl"], addrB, "ps")
		ok := false
		for _, line := range strings.Split(psOut, "\n") {
			if strings.Contains(line, "bundled-notepad") && strings.Contains(line, "hostB") && strings.Contains(line, "true") {
				ok = true
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hostB never listed the migrated bundle app running:\n%s", psOut)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Bundle accounting on /metrics, fleet-wide names.
	if n := bundleMeter(t, regDebug, "mdagent_bundle_pushes_total"); n < 1 {
		t.Fatalf("registry pushes counter = %d, want >= 1", n)
	}
	if n := bundleMeter(t, regDebug, "mdagent_bundle_bytes_total"); n < int64(len(rawBundle)) {
		t.Fatalf("registry bytes counter = %d, want >= %d", n, len(rawBundle))
	}
	for _, dbg := range []struct{ tag, addr string }{{"hostA", debugA}, {"hostB", debugB}} {
		if n := bundleMeter(t, dbg.addr, "mdagent_bundle_installs_total"); n < 1 {
			t.Fatalf("%s installs counter = %d, want >= 1", dbg.tag, n)
		}
	}

	// A tampered copy of the trusted bundle is refused before anything
	// is stored: flip one payload byte past the header.
	tampered := append([]byte(nil), rawBundle...)
	tampered[len(tampered)/2] ^= 0xff
	tamperedPath := filepath.Join(dir, "tampered.mdab")
	if err := os.WriteFile(tamperedPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	out = mdctlFail(t, bins["mdctl"], regAddr, "bundle", "push", tamperedPath)
	if !strings.Contains(out, "corrupt bundle") && !strings.Contains(out, "signature does not verify") {
		t.Fatalf("tampered push refusal not typed:\n%s", out)
	}
}
