package main

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mdagent/internal/app"
	"mdagent/internal/bundle"
	"mdagent/internal/ctl"
	"mdagent/internal/wsdl"
)

const bundleUsage = `usage: mdctl [flags] bundle <subcommand> [flags] [args]

subcommands:
  keygen -out <prefix>      generate an ed25519 signing keypair (<prefix>.key + <prefix>.pub)
  pack -spec <app.json> -key <keyfile> -out <file.mdab>
                            build and sign a portable app bundle from a JSON spec
  inspect <file.mdab>       print a bundle's manifest and signer (no trust check)
  push <file.mdab>          upload the bundle to the server (verified there)
  list                      list the bundles stored at the server
  install <app>             instantiate a stored bundle on the serving host
`

// bundleSpec is the JSON authoring format `mdctl bundle pack` reads. It
// deliberately mirrors the manifest plus optional initial contents —
// "state" seeds key=value fields of state components, "data" seeds blob
// component contents; either makes the bundle carry an initial-state
// frame.
type bundleSpec struct {
	App        string `json:"app"`
	Doc        string `json:"doc,omitempty"`
	Components []struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	} `json:"components"`
	Resources []string `json:"resources,omitempty"`
	Profile   struct {
		User        string            `json:"user,omitempty"`
		Preferences map[string]string `json:"preferences,omitempty"`
	} `json:"profile,omitempty"`
	Secrets []struct {
		Key string `json:"key"`
		Ref string `json:"ref"`
	} `json:"secrets,omitempty"`
	State map[string]map[string]string `json:"state,omitempty"`
	Data  map[string]string            `json:"data,omitempty"`
}

// bundleCmd dispatches the bundle subcommands. keygen/pack/inspect are
// local (no server round trip); push/list/install speak the control
// plane through cli.
func bundleCmd(ctx context.Context, args []string, cli *ctl.Client, out io.Writer, jsonOut bool, host string) error {
	if len(args) == 0 {
		fmt.Fprint(out, bundleUsage)
		return fmt.Errorf("missing bundle subcommand")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("mdctl bundle "+sub, flag.ContinueOnError)
	fs.SetOutput(out)
	spec := fs.String("spec", "", "pack: JSON bundle spec file")
	keyFile := fs.String("key", "", "pack: signing key file (hex ed25519 seed, from keygen)")
	outPath := fs.String("out", "", "pack: output bundle file; keygen: key file prefix")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	emit := func(v any) error {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}

	switch sub {
	case "keygen":
		if *outPath == "" {
			return fmt.Errorf("usage: mdctl bundle keygen -out <prefix>")
		}
		pub, priv, err := bundle.GenerateKey()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath+".key", []byte(bundle.FormatPrivateKey(priv)+"\n"), 0o600); err != nil {
			return err
		}
		if err := os.WriteFile(*outPath+".pub", []byte(bundle.FormatPublicKey(pub)+"\n"), 0o644); err != nil {
			return err
		}
		if jsonOut {
			return emit(map[string]string{"key": *outPath + ".key", "pub": *outPath + ".pub", "public": bundle.FormatPublicKey(pub)})
		}
		fmt.Fprintf(out, "keygen: wrote %s.key (secret) and %s.pub\npublic key: %s\n", *outPath, *outPath, bundle.FormatPublicKey(pub))
		return nil

	case "pack":
		if *spec == "" || *keyFile == "" || *outPath == "" {
			return fmt.Errorf("usage: mdctl bundle pack -spec <app.json> -key <keyfile> -out <file.mdab>")
		}
		raw, pub, err := packBundle(*spec, *keyFile)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
			return err
		}
		if jsonOut {
			return emit(map[string]any{"out": *outPath, "bytes": len(raw), "signer": bundle.FormatPublicKey(pub)})
		}
		fmt.Fprintf(out, "packed %s: %d bytes, signed by %s\n", *outPath, len(raw), bundle.FormatPublicKey(pub))
		return nil

	case "inspect":
		path := fs.Arg(0)
		if path == "" {
			return fmt.Errorf("usage: mdctl bundle inspect <file.mdab>")
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		b, err := bundle.Inspect(raw)
		if err != nil {
			return err
		}
		return printBundle(out, jsonOut, b, len(raw))

	case "push":
		path := fs.Arg(0)
		if path == "" {
			return fmt.Errorf("usage: mdctl bundle push <file.mdab>")
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Inspect locally for the storage name; the server re-verifies
		// signature and trust before storing anything.
		b, err := bundle.Inspect(raw)
		if err != nil {
			return err
		}
		if err := cli.PushBundle(ctx, b.Manifest.App, raw); err != nil {
			return err
		}
		if jsonOut {
			return emit(map[string]any{"op": "bundle.push", "app": b.Manifest.App, "bytes": len(raw), "result": "ok"})
		}
		fmt.Fprintf(out, "pushed %s (%d bytes): ok\n", b.Manifest.App, len(raw))
		return nil

	case "list":
		infos, err := cli.Bundles(ctx)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(infos)
		}
		fmt.Fprintf(out, "%-32s %s\n", "BUNDLE", "BYTES")
		for _, info := range infos {
			fmt.Fprintf(out, "%-32s %d\n", info.Name, info.Bytes)
		}
		return nil

	case "install":
		appName := fs.Arg(0)
		if appName == "" {
			return fmt.Errorf("usage: mdctl bundle install <app>")
		}
		if err := cli.InstallBundle(ctx, appName, host); err != nil {
			return err
		}
		if jsonOut {
			return emit(map[string]string{"op": "bundle.install", "app": appName, "result": "ok"})
		}
		fmt.Fprintf(out, "bundle install %s: ok\n", appName)
		return nil
	}
	fmt.Fprint(out, bundleUsage)
	return fmt.Errorf("unknown bundle subcommand %q", sub)
}

// packBundle reads a JSON spec and a signing key and assembles the
// signed bundle bytes.
func packBundle(specPath, keyPath string) ([]byte, ed25519.PublicKey, error) {
	specRaw, err := os.ReadFile(specPath)
	if err != nil {
		return nil, nil, err
	}
	var spec bundleSpec
	dec := json.NewDecoder(strings.NewReader(string(specRaw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", specPath, err)
	}
	m := bundle.Manifest{
		App:         spec.App,
		Description: specDescription(spec),
		Resources:   spec.Resources,
		Profile:     app.UserProfile{User: spec.Profile.User, Preferences: spec.Profile.Preferences},
	}
	for _, c := range spec.Components {
		kind, ok := bundle.ParseKind(c.Kind)
		if !ok {
			return nil, nil, fmt.Errorf("component %q: unknown kind %q (want logic, ui, data, or state)", c.Name, c.Kind)
		}
		m.Components = append(m.Components, bundle.ComponentSpec{Name: c.Name, Kind: kind})
	}
	for _, s := range spec.Secrets {
		m.Secrets = append(m.Secrets, bundle.SecretRef{Key: s.Key, Ref: s.Ref})
	}
	wrap, err := specWrap(spec, m)
	if err != nil {
		return nil, nil, err
	}
	keyRaw, err := os.ReadFile(keyPath)
	if err != nil {
		return nil, nil, err
	}
	key, err := bundle.ParsePrivateKey(strings.TrimSpace(string(keyRaw)))
	if err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", keyPath, err)
	}
	raw, err := bundle.Pack(m, wrap, key)
	if err != nil {
		return nil, nil, err
	}
	return raw, key.Public().(ed25519.PublicKey), nil
}

// specDescription synthesizes the minimal valid WSDL description for a
// packed app: one service, one port, one operation. Authors needing the
// full device-requirement vocabulary compile their apps in; the bundle
// path is for portable distribution.
func specDescription(spec bundleSpec) wsdl.Description {
	return wsdl.Description{
		Name: spec.App,
		Doc:  spec.Doc,
		Services: []wsdl.Service{{
			Name: spec.App + "-service",
			Ports: []wsdl.Port{{
				Name:       "main",
				Operations: []wsdl.Operation{{Name: "serve"}},
			}},
		}},
	}
}

// specWrap builds the bundle's optional initial-state frame: an app
// instance assembled per the manifest, seeded with the spec's state
// fields and blob contents, then wrapped.
func specWrap(spec bundleSpec, m bundle.Manifest) (*app.Wrap, error) {
	if len(spec.State) == 0 && len(spec.Data) == 0 {
		return nil, nil
	}
	inst := app.New(spec.App, "mdctl-pack", m.Description)
	for _, cs := range m.Components {
		var c app.Component
		if cs.Kind == app.KindState {
			c = app.NewState(cs.Name)
		} else {
			c = app.NewBlob(cs.Name, cs.Kind, nil)
		}
		if err := inst.AddComponent(c); err != nil {
			return nil, err
		}
	}
	for name, fields := range spec.State {
		c, ok := inst.Component(name)
		if !ok {
			return nil, fmt.Errorf("state for undeclared component %q", name)
		}
		sc, ok := c.(*app.StateComponent)
		if !ok {
			return nil, fmt.Errorf("state for non-state component %q", name)
		}
		for k, v := range fields {
			sc.Set(k, v)
		}
	}
	for name, content := range spec.Data {
		c, ok := inst.Component(name)
		if !ok {
			return nil, fmt.Errorf("data for undeclared component %q", name)
		}
		bc, ok := c.(*app.BlobComponent)
		if !ok {
			return nil, fmt.Errorf("data for state component %q (use \"state\")", name)
		}
		bc.SetContent([]byte(content))
	}
	w, err := inst.WrapComponents(nil)
	if err != nil {
		return nil, err
	}
	return &w, nil
}

// printBundle renders an inspected bundle.
func printBundle(out io.Writer, jsonOut bool, b *bundle.Bundle, size int) error {
	type componentLine struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	kindName := map[app.ComponentKind]string{
		app.KindLogic: "logic", app.KindUI: "ui", app.KindData: "data", app.KindState: "state",
	}
	comps := make([]componentLine, 0, len(b.Manifest.Components))
	for _, c := range b.Manifest.Components {
		comps = append(comps, componentLine{Name: c.Name, Kind: kindName[c.Kind]})
	}
	secrets := make([]string, 0, len(b.Manifest.Secrets))
	for _, s := range b.Manifest.Secrets {
		secrets = append(secrets, s.Key+" <- "+s.Ref)
	}
	sort.Strings(secrets)
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"app":        b.Manifest.App,
			"signer":     bundle.FormatPublicKey(b.Key),
			"bytes":      size,
			"components": comps,
			"resources":  b.Manifest.Resources,
			"secrets":    secrets,
			"state":      b.State != nil,
		})
	}
	fmt.Fprintf(out, "bundle %s (%d bytes)\n", b.Manifest.App, size)
	fmt.Fprintf(out, "  signer: %s\n", bundle.FormatPublicKey(b.Key))
	for _, c := range comps {
		fmt.Fprintf(out, "  component %-24s %s\n", c.Name, c.Kind)
	}
	for _, r := range b.Manifest.Resources {
		fmt.Fprintf(out, "  resource %s\n", r)
	}
	for _, s := range secrets {
		fmt.Fprintf(out, "  secret %s\n", s)
	}
	if b.State != nil {
		fmt.Fprintf(out, "  initial state: yes\n")
	}
	return nil
}
