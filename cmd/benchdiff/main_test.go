package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// doc builds an mdbench-shaped document (the JSON round trip matters:
// extraction sees json.Unmarshal's map[string]any/float64 types, not
// Go structs).
func doc(t *testing.T, ctlV2, storeWrites, membersBytes float64) map[string]any {
	t.Helper()
	raw, err := json.Marshal(map[string]any{
		"ctl": map[string]any{
			"figure": "ctl",
			"result": map[string]any{
				"V1": map[string]any{"EventsPerSec": ctlV2 / 5},
				"V2": map[string]any{"EventsPerSec": ctlV2},
			},
		},
		"store": map[string]any{
			"figure": "store",
			"result": map[string]any{"rows": []map[string]any{
				{"Engine": "seed", "Sync": "", "WritesPerSec": 1.0},
				{"Engine": "engine", "Sync": "interval", "WritesPerSec": storeWrites},
				{"Engine": "engine", "Sync": "always", "WritesPerSec": storeWrites / 10},
			}},
		},
		"members": map[string]any{
			"figure": "members",
			"result": map[string]any{"bounded": []map[string]any{
				{"Hosts": 40.0, "BytesPerMsg": membersBytes + 100},
				{"Hosts": 80.0, "BytesPerMsg": membersBytes},
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func failures(lines []diffLine) int {
	n := 0
	for _, l := range lines {
		if l.Failed {
			n++
		}
	}
	return n
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	base := doc(t, 100_000, 50_000, 700)
	// 20% worse everywhere (bytes/msg is lower-better, so worse = up).
	cur := doc(t, 80_000, 40_000, 840)
	lines := diff(base, cur, 0.25)
	if len(lines) != 3 || failures(lines) != 0 {
		t.Fatalf("20%% regression under a 25%% gate should pass: %+v", lines)
	}
}

func TestDiffFailsPastTolerance(t *testing.T) {
	base := doc(t, 100_000, 50_000, 700)
	for name, cur := range map[string]map[string]any{
		"ctl":     doc(t, 70_000, 50_000, 700),
		"store":   doc(t, 100_000, 37_000, 700),
		"members": doc(t, 100_000, 50_000, 940), // lower-better: +34% is a regression
	} {
		lines := diff(base, cur, 0.25)
		if failures(lines) != 1 {
			t.Fatalf("%s regression should fail exactly one metric: %+v", name, lines)
		}
	}
}

func TestDiffImprovementNeverFails(t *testing.T) {
	base := doc(t, 100_000, 50_000, 700)
	cur := doc(t, 500_000, 250_000, 140) // 5x better across the board
	if lines := diff(base, cur, 0.25); failures(lines) != 0 {
		t.Fatalf("improvements failed the gate: %+v", lines)
	}
}

func TestDiffMissingMetricInCurrentFails(t *testing.T) {
	base := doc(t, 100_000, 50_000, 700)
	cur := doc(t, 100_000, 50_000, 700)
	delete(cur, "ctl") // the figure silently vanished from the run
	lines := diff(base, cur, 0.25)
	if failures(lines) != 1 {
		t.Fatalf("dropped figure should fail the gate: %+v", lines)
	}
	found := false
	for _, l := range lines {
		found = found || (l.Failed && strings.Contains(l.Text, "missing from current"))
	}
	if !found {
		t.Fatalf("failure line should say the metric is missing: %+v", lines)
	}
}

func TestDiffMissingBaselineSkips(t *testing.T) {
	base := doc(t, 100_000, 50_000, 700)
	delete(base, "members") // metric added after the baseline was cut
	cur := doc(t, 100_000, 50_000, 700)
	lines := diff(base, cur, 0.25)
	if failures(lines) != 0 {
		t.Fatalf("missing baseline must skip, not fail: %+v", lines)
	}
	found := false
	for _, l := range lines {
		found = found || strings.Contains(l.Text, "no baseline")
	}
	if !found {
		t.Fatalf("skip line should say there is no baseline: %+v", lines)
	}
}
