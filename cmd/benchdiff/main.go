// Command benchdiff is the CI perf-regression gate: it compares an
// mdbench -json document against a checked-in baseline and fails when
// a headline metric regressed past the allowed fraction.
//
//	benchdiff -baseline bench/baseline.json -current BENCH.json
//	benchdiff -baseline a.json -current b.json -max-regress 0.10
//
// The gated metrics are the ones each PR's acceptance bars are written
// against: control-plane watch throughput (v2 fan-out), storage-engine
// sustained write throughput, and the bounded-gossip payload size.
// Improvements never fail the gate; a metric missing from the current
// document while the baseline has it fails loudly — a silently dropped
// figure must not read as "no regression".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// metric is one gated comparison. extract returns false when the
// document does not carry the metric.
type metric struct {
	name         string
	higherBetter bool
	extract      func(doc map[string]any) (float64, bool)
}

// gated is the metric set the CI gate enforces.
var gated = []metric{
	{
		name:         "ctl watch v2 events/sec",
		higherBetter: true,
		extract: func(doc map[string]any) (float64, bool) {
			return dig(doc, "ctl", "result", "V2", "EventsPerSec")
		},
	},
	{
		name:         "store engine(interval) writes/sec",
		higherBetter: true,
		extract:      storeIntervalWrites,
	},
	{
		name:         "members bounded bytes/msg",
		higherBetter: false,
		extract: func(doc map[string]any) (float64, bool) {
			rows, ok := digSlice(doc, "members", "result", "bounded")
			if !ok || len(rows) == 0 {
				return 0, false
			}
			last, ok := rows[len(rows)-1].(map[string]any)
			if !ok {
				return 0, false
			}
			return num(last["BytesPerMsg"])
		},
	},
}

// storeIntervalWrites finds the engine row measured under the interval
// sync policy — the configuration the daemons run with.
func storeIntervalWrites(doc map[string]any) (float64, bool) {
	rows, ok := digSlice(doc, "store", "result", "rows")
	if !ok {
		return 0, false
	}
	for _, raw := range rows {
		row, ok := raw.(map[string]any)
		if !ok {
			continue
		}
		if row["Engine"] == "engine" && row["Sync"] == "interval" {
			return num(row["WritesPerSec"])
		}
	}
	return 0, false
}

// dig walks nested maps to a leaf number.
func dig(doc map[string]any, path ...string) (float64, bool) {
	cur := any(doc)
	for _, key := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		if cur, ok = m[key]; !ok {
			return 0, false
		}
	}
	return num(cur)
}

// digSlice walks nested maps to a leaf array.
func digSlice(doc map[string]any, path ...string) ([]any, bool) {
	last := len(path) - 1
	parent, ok := any(doc), true
	for _, key := range path[:last] {
		m, isMap := parent.(map[string]any)
		if !isMap {
			return nil, false
		}
		if parent, ok = m[key]; !ok {
			return nil, false
		}
	}
	m, isMap := parent.(map[string]any)
	if !isMap {
		return nil, false
	}
	s, isSlice := m[path[last]].([]any)
	return s, isSlice
}

func num(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

// diffLine is one metric's verdict.
type diffLine struct {
	Text   string
	Failed bool
}

// diff compares every gated metric. maxRegress is the allowed
// fractional regression (0.25 = fail past 25% worse).
func diff(baseline, current map[string]any, maxRegress float64) []diffLine {
	var out []diffLine
	for _, m := range gated {
		base, haveBase := m.extract(baseline)
		cur, haveCur := m.extract(current)
		switch {
		case !haveBase && !haveCur:
			continue
		case !haveBase:
			out = append(out, diffLine{Text: fmt.Sprintf("SKIP %-36s no baseline (current %.1f)", m.name, cur)})
		case !haveCur:
			out = append(out, diffLine{
				Text:   fmt.Sprintf("FAIL %-36s missing from current run (baseline %.1f)", m.name, base),
				Failed: true,
			})
		case base <= 0:
			out = append(out, diffLine{Text: fmt.Sprintf("SKIP %-36s non-positive baseline %.1f", m.name, base)})
		default:
			// Normalize so "change" is negative exactly when worse.
			change := (cur - base) / base
			if !m.higherBetter {
				change = -change
			}
			verdict, failed := "ok  ", false
			if change < -maxRegress {
				verdict, failed = "FAIL", true
			}
			out = append(out, diffLine{
				Text: fmt.Sprintf("%s %-36s baseline %12.1f  current %12.1f  (%+.1f%%)",
					verdict, m.name, base, cur, 100*change),
				Failed: failed,
			})
		}
	}
	return out
}

func load(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func main() {
	baselinePath := flag.String("baseline", "bench/baseline.json", "baseline mdbench -json document")
	currentPath := flag.String("current", "BENCH.json", "current mdbench -json document")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional regression before failing (0.25 = 25%)")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	failed := false
	for _, line := range diff(baseline, current, *maxRegress) {
		fmt.Println(line.Text)
		failed = failed || line.Failed
	}
	if failed {
		fmt.Printf("benchdiff: regression past %.0f%% — failing the gate\n", 100**maxRegress)
		os.Exit(1)
	}
}
