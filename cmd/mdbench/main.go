// Command mdbench regenerates the paper's evaluation figures as tables
// (and optional CSV): Fig. 7 (skew-canceling timing), Fig. 8 (adaptive
// component binding sweep), Fig. 9 (static binding sweep), Fig. 10
// (comparative total cost), and the demo-2 clone-dispatch fan-out.
//
// Usage:
//
//	mdbench -fig all
//	mdbench -fig 8 -csv fig8.csv
//	mdbench -fig clone -rooms 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdagent/internal/bench"
	"mdagent/internal/migrate"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 7, 8, 9, 10, clone, or all")
	csvPath := flag.String("csv", "", "also write the series as CSV to this file")
	rooms := flag.Int("rooms", 3, "overflow rooms for the clone-dispatch experiment")
	flag.Parse()

	var csv strings.Builder
	run := func(name string, fn func(out *strings.Builder) error) {
		if err := fn(&csv); err != nil {
			fmt.Fprintf(os.Stderr, "mdbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	switch *fig {
	case "7":
		run("fig7", fig7)
	case "8":
		run("fig8", fig8)
	case "9":
		run("fig9", fig9)
	case "10":
		run("fig10", fig10)
	case "clone":
		run("clone", func(out *strings.Builder) error { return clone(out, *rooms) })
	case "all":
		run("fig7", fig7)
		run("fig8", fig8)
		run("fig9", fig9)
		run("fig10", fig10)
		run("clone", func(out *strings.Builder) error { return clone(out, *rooms) })
	default:
		fmt.Fprintf(os.Stderr, "mdbench: unknown figure %q (want 7, 8, 9, 10, clone, all)\n", *fig)
		os.Exit(2)
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mdbench: write csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}

func fig7(csv *strings.Builder) error {
	fmt.Println("== Fig. 7 — skew-canceling round-trip measurement ==")
	fmt.Println("   (hostB's clock runs 3s ahead of hostA's)")
	res, err := bench.RunFig7()
	if err != nil {
		return err
	}
	fmt.Printf("  injected clock offset:           %v\n", res.Skew)
	fmt.Printf("  true round-trip migration time:  %v\n", res.TrueRTT)
	fmt.Printf("  skew-canceled formula result:    %v  (error %v)\n",
		res.SkewCanceled, (res.SkewCanceled - res.TrueRTT).Abs())
	fmt.Printf("  naive cross-clock one-way:       %v  (error %v — the offset)\n",
		res.NaiveOneWay, (res.NaiveOneWay - res.TrueOneWay).Abs())
	fmt.Println()
	fmt.Fprintf(csv, "fig7,skew_ms,true_rtt_ms,formula_rtt_ms,naive_oneway_ms\n")
	fmt.Fprintf(csv, "fig7,%d,%d,%d,%d\n\n",
		res.Skew.Milliseconds(), res.TrueRTT.Milliseconds(),
		res.SkewCanceled.Milliseconds(), res.NaiveOneWay.Milliseconds())
	return nil
}

func sweepTable(csv *strings.Builder, tag, title string, binding migrate.BindingMode) error {
	fmt.Printf("== %s ==\n", title)
	points, err := bench.Sweep(binding)
	if err != nil {
		return err
	}
	fmt.Printf("  %-6s %10s %10s %10s %10s %12s\n", "size", "suspend", "migrate", "resume", "total", "wrap-bytes")
	fmt.Fprintf(csv, "%s,size,suspend_ms,migrate_ms,resume_ms,total_ms,wrap_bytes\n", tag)
	for _, p := range points {
		fmt.Printf("  %-6s %8dms %8dms %8dms %8dms %12d\n",
			p.Label, p.Suspend.Milliseconds(), p.Migrate.Milliseconds(),
			p.Resume.Milliseconds(), p.Total.Milliseconds(), p.Bytes)
		fmt.Fprintf(csv, "%s,%s,%d,%d,%d,%d,%d\n", tag, p.Label,
			p.Suspend.Milliseconds(), p.Migrate.Milliseconds(),
			p.Resume.Milliseconds(), p.Total.Milliseconds(), p.Bytes)
	}
	fmt.Println()
	csv.WriteString("\n")
	return nil
}

func fig8(csv *strings.Builder) error {
	return sweepTable(csv, "fig8", "Fig. 8 — adaptive component binding (this paper)", migrate.BindingAdaptive)
}

func fig9(csv *strings.Builder) error {
	return sweepTable(csv, "fig9", "Fig. 9 — static component binding (original design [7])", migrate.BindingStatic)
}

func fig10(csv *strings.Builder) error {
	fmt.Println("== Fig. 10 — comparative total cost ==")
	rows, err := bench.RunFig10()
	if err != nil {
		return err
	}
	fmt.Printf("  %-6s %14s %14s %10s\n", "size", "adaptive", "static", "ratio")
	fmt.Fprintf(csv, "fig10,size,adaptive_ms,static_ms,ratio\n")
	for _, r := range rows {
		fmt.Printf("  %-6s %12dms %12dms %9.1fx\n",
			r.Label, r.Adaptive.Milliseconds(), r.Static.Milliseconds(), r.Ratio)
		fmt.Fprintf(csv, "fig10,%s,%d,%d,%.2f\n", r.Label,
			r.Adaptive.Milliseconds(), r.Static.Milliseconds(), r.Ratio)
	}
	fmt.Println()
	csv.WriteString("\n")
	return nil
}

func clone(csv *strings.Builder, rooms int) error {
	fmt.Printf("== Demo 2 — clone-dispatch slideshow to %d overflow rooms ==\n", rooms)
	results, err := bench.RunCloneFanout(rooms, 3_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("  %-10s %10s %10s %12s %6s\n", "room", "clone", "bytes", "inter-space", "sync")
	fmt.Fprintf(csv, "clone,room,clone_ms,bytes,inter_space,sync_ms\n")
	for _, r := range results {
		fmt.Printf("  %-10s %8dms %10d %12v %4dms\n",
			r.Room, r.Report.Total().Milliseconds(), r.Report.BytesMoved,
			r.InterSpace, r.SyncRTT.Milliseconds())
		fmt.Fprintf(csv, "clone,%s,%d,%d,%v,%d\n", r.Room,
			r.Report.Total().Milliseconds(), r.Report.BytesMoved,
			r.InterSpace, r.SyncRTT.Milliseconds())
	}
	fmt.Println()
	csv.WriteString("\n")
	return nil
}
