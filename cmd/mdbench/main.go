// Command mdbench regenerates the paper's evaluation figures as tables
// (and optional CSV or JSON): Fig. 7 (skew-canceling timing), Fig. 8
// (adaptive component binding sweep), Fig. 9 (static binding sweep),
// Fig. 10 (comparative total cost), the demo-2 clone-dispatch fan-out,
// the cluster churn experiment (gossip convergence + failover latency,
// with and without snapshot-state replication), the flapping-link
// experiment (false-positive suspicion under link flap), the delta sweep
// (replicated bytes per capture tick, full-frame vs delta pipeline,
// across app sizes), the durability experiment (kill-after-write record
// loss and per-write latency across write concerns), the membership
// scale sweep (bounded gossip dissemination at 200-1,000 simulated
// hosts vs the full-table baseline), the storage-engine experiment
// (sustained writes/sec and p99 put latency at 1M+ resident records,
// seed single-lock store vs the PR 8 engine, plus a kill-mid-commit
// crash audit), and the suspicion-timeout sweep (detection latency vs
// false-positive rate à la Lifeguard).
//
// Usage:
//
//	mdbench -fig all
//	mdbench -fig 8 -csv fig8.csv
//	mdbench -fig clone -rooms 4
//	mdbench -fig churn -spaces 5
//	mdbench -fig flap -flap-period 10ms -flap-cycles 20
//	mdbench -fig delta -delta-ticks 16
//	mdbench -fig members -members-hosts 200,500,1000
//	mdbench -fig churn,durability -json BENCH_pr4.json
//
// -fig accepts a comma-separated list; -json writes every figure that
// ran as one machine-readable document (CI uploads it per PR so the
// perf trajectory is diffable).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mdagent/internal/bench"
	"mdagent/internal/cluster"
	"mdagent/internal/migrate"
	"mdagent/internal/store"
)

// record stores one figure's result in the JSON document wrapped in a
// self-describing envelope: the figure name, the config knobs it ran
// with, and the runtime that produced it. A BENCH_prN.json record must
// be interpretable years later without the CI log that produced it.
func record(doc map[string]any, fig string, knobs map[string]any, result any) {
	doc[fig] = map[string]any{
		"figure":     fig,
		"config":     knobs,
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"result":     result,
	}
}

func main() {
	// Kill-mid-commit audit hook: when the crash env var is set this
	// process is a re-exec'd SyncAlways writer child, not the CLI.
	if bench.StoreCrashChildMain() {
		return
	}
	if err := run(os.Args[1:], os.Stdout); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "mdbench: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of mdbench.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mdbench", flag.ContinueOnError)
	fs.SetOutput(out)
	fig := fs.String("fig", "all", "figures to regenerate (comma-separated): 7, 8, 9, 10, clone, churn, flap, delta, durability, ctl, obs, members, store, suspicion, bundle, or all")
	csvPath := fs.String("csv", "", "also write the series as CSV to this file")
	jsonPath := fs.String("json", "", "also write every figure that ran as one JSON document to this file")
	rooms := fs.Int("rooms", 3, "overflow rooms for the clone-dispatch experiment")
	spaces := fs.Int("spaces", 3, "smart spaces for the churn, flap and durability experiments (>= 3)")
	flapPeriod := fs.Duration("flap-period", 10*time.Millisecond, "link toggle half-period for the flap experiment")
	flapCycles := fs.Int("flap-cycles", 20, "down/up toggles for the flap experiment")
	songBytes := fs.Int64("song-bytes", 2_000_000, "song size for the churn experiment (sets the snapshot frame size)")
	deltaTicks := fs.Int("delta-ticks", 16, "mutated capture ticks per cell of the delta sweep")
	durWrites := fs.Int("dur-writes", 16, "writes per phase and record kind for the durability experiment")
	ctlRequests := fs.Int("ctl-requests", 2000, "round-trip requests for the control-plane experiment")
	ctlWatchers := fs.Int("ctl-watchers", 16, "concurrent watchers for the control-plane fan-out experiment")
	ctlEvents := fs.Int("ctl-events", 512, "events published to the control-plane watchers")
	obsIters := fs.Int("obs-iters", 1_000_000, "raw metric-op iterations for the observability overhead experiment")
	membersHosts := fs.String("members-hosts", "200,500,1000", "host counts for the membership scale sweep (comma-separated)")
	membersBaseline := fs.String("members-baseline-hosts", "200,500", "host counts re-run with full-table gossip as the baseline (comma-separated; empty disables)")
	storeRecords := fs.Int("store-records", 1_000_000, "resident records preloaded for the storage-engine experiment")
	storeOps := fs.Int("store-ops", 200_000, "measured mixed writes for the storage-engine experiment")
	storeWriters := fs.Int("store-writers", 8, "concurrent writers for the storage-engine experiment")
	storeValueBytes := fs.Int("store-value-bytes", 128, "registry record size for the storage-engine experiment")
	storeBlobEvery := fs.Int("store-blob-every", 64, "every Nth write is a snapshot frame (0 disables)")
	storeBlobBytes := fs.Int("store-blob-bytes", 256<<10, "snapshot frame size for the storage-engine experiment")
	storeCrashTrials := fs.Int("store-crash-trials", 3, "kill-mid-commit audit trials (0 disables)")
	storeCrashAfter := fs.Duration("store-crash-after", 250*time.Millisecond, "base writer lifetime before the mid-commit SIGKILL")
	suspHosts := fs.Int("suspicion-hosts", 12, "hosts for the suspicion-timeout sweep")
	suspCycles := fs.Int("suspicion-cycles", 6, "freeze/recover cycles per timeout for the suspicion sweep")
	suspBlip := fs.Duration("suspicion-blip", 50*time.Millisecond, "freeze duration per cycle for the suspicion sweep")
	suspTimeouts := fs.String("suspicion-timeouts", "10ms,25ms,50ms,100ms,250ms,500ms", "SuspicionTimeout values to sweep (comma-separated durations)")
	bundleHosts := fs.Int("bundle-hosts", 16, "installing hosts for the bundle fan-out experiment")
	bundleStateBytes := fs.Int("bundle-state-bytes", 256<<10, "initial-state payload packed into the benchmark bundle")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var csv strings.Builder
	doc := map[string]any{}
	figures := map[string]func() error{
		"7":          func() error { return fig7(out, &csv, doc) },
		"8":          func() error { return fig8(out, &csv, doc) },
		"9":          func() error { return fig9(out, &csv, doc) },
		"10":         func() error { return fig10(out, &csv, doc) },
		"clone":      func() error { return clone(out, &csv, doc, *rooms) },
		"churn":      func() error { return churn(out, &csv, doc, *spaces, *songBytes) },
		"flap":       func() error { return flap(out, &csv, doc, *spaces, *flapPeriod, *flapCycles) },
		"delta":      func() error { return delta(out, &csv, doc, *deltaTicks) },
		"durability": func() error { return durability(out, &csv, doc, *spaces, *durWrites) },
		"ctl":        func() error { return ctlFig(out, &csv, doc, *ctlRequests, *ctlWatchers, *ctlEvents) },
		"obs":        func() error { return obsFig(out, &csv, doc, *obsIters) },
		"members":    func() error { return members(out, &csv, doc, *membersHosts, *membersBaseline) },
		"store": func() error {
			cfg := bench.StoreConfig{Records: *storeRecords, Writers: *storeWriters, Ops: *storeOps,
				ValueBytes: *storeValueBytes, BlobEvery: *storeBlobEvery, BlobBytes: *storeBlobBytes}
			return storeFig(out, &csv, doc, cfg, *storeCrashTrials, *storeCrashAfter)
		},
		"suspicion": func() error {
			return suspicion(out, &csv, doc, *suspHosts, *suspCycles, *suspBlip, *suspTimeouts)
		},
		"bundle": func() error { return bundleFig(out, &csv, doc, *bundleHosts, *bundleStateBytes) },
	}
	all := []string{"7", "8", "9", "10", "clone", "churn", "flap", "delta", "durability", "ctl", "obs", "members", "store", "suspicion", "bundle"}
	var order []string
	if *fig == "all" {
		order = all
	} else {
		for _, name := range strings.Split(*fig, ",") {
			name = strings.TrimSpace(name)
			if _, ok := figures[name]; !ok {
				return fmt.Errorf("unknown figure %q (want %s, or all)", name, strings.Join(all, ", "))
			}
			order = append(order, name)
		}
	}
	for _, name := range order {
		if err := figures[name](); err != nil {
			return fmt.Errorf("fig %s: %w", name, err)
		}
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Fprintf(out, "\nCSV written to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return fmt.Errorf("encode json: %w", err)
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write json: %w", err)
		}
		fmt.Fprintf(out, "\nJSON written to %s\n", *jsonPath)
	}
	return nil
}

func fig7(out io.Writer, csv *strings.Builder, doc map[string]any) error {
	fmt.Fprintln(out, "== Fig. 7 — skew-canceling round-trip measurement ==")
	fmt.Fprintln(out, "   (hostB's clock runs 3s ahead of hostA's)")
	res, err := bench.RunFig7()
	if err != nil {
		return err
	}
	record(doc, "fig7", nil, res)
	fmt.Fprintf(out, "  injected clock offset:           %v\n", res.Skew)
	fmt.Fprintf(out, "  true round-trip migration time:  %v\n", res.TrueRTT)
	fmt.Fprintf(out, "  skew-canceled formula result:    %v  (error %v)\n",
		res.SkewCanceled, (res.SkewCanceled - res.TrueRTT).Abs())
	fmt.Fprintf(out, "  naive cross-clock one-way:       %v  (error %v — the offset)\n",
		res.NaiveOneWay, (res.NaiveOneWay - res.TrueOneWay).Abs())
	fmt.Fprintln(out)
	fmt.Fprintf(csv, "fig7,skew_ms,true_rtt_ms,formula_rtt_ms,naive_oneway_ms\n")
	fmt.Fprintf(csv, "fig7,%d,%d,%d,%d\n\n",
		res.Skew.Milliseconds(), res.TrueRTT.Milliseconds(),
		res.SkewCanceled.Milliseconds(), res.NaiveOneWay.Milliseconds())
	return nil
}

func sweepTable(out io.Writer, csv *strings.Builder, doc map[string]any, tag, title string, binding migrate.BindingMode) error {
	fmt.Fprintf(out, "== %s ==\n", title)
	points, err := bench.Sweep(binding)
	if err != nil {
		return err
	}
	record(doc, tag, map[string]any{"binding": fmt.Sprint(binding)}, points)
	fmt.Fprintf(out, "  %-6s %10s %10s %10s %10s %12s\n", "size", "suspend", "migrate", "resume", "total", "wrap-bytes")
	fmt.Fprintf(csv, "%s,size,suspend_ms,migrate_ms,resume_ms,total_ms,wrap_bytes\n", tag)
	for _, p := range points {
		fmt.Fprintf(out, "  %-6s %8dms %8dms %8dms %8dms %12d\n",
			p.Label, p.Suspend.Milliseconds(), p.Migrate.Milliseconds(),
			p.Resume.Milliseconds(), p.Total.Milliseconds(), p.Bytes)
		fmt.Fprintf(csv, "%s,%s,%d,%d,%d,%d,%d\n", tag, p.Label,
			p.Suspend.Milliseconds(), p.Migrate.Milliseconds(),
			p.Resume.Milliseconds(), p.Total.Milliseconds(), p.Bytes)
	}
	fmt.Fprintln(out)
	csv.WriteString("\n")
	return nil
}

func fig8(out io.Writer, csv *strings.Builder, doc map[string]any) error {
	return sweepTable(out, csv, doc, "fig8", "Fig. 8 — adaptive component binding (this paper)", migrate.BindingAdaptive)
}

func fig9(out io.Writer, csv *strings.Builder, doc map[string]any) error {
	return sweepTable(out, csv, doc, "fig9", "Fig. 9 — static component binding (original design [7])", migrate.BindingStatic)
}

func fig10(out io.Writer, csv *strings.Builder, doc map[string]any) error {
	fmt.Fprintln(out, "== Fig. 10 — comparative total cost ==")
	rows, err := bench.RunFig10()
	if err != nil {
		return err
	}
	record(doc, "fig10", nil, rows)
	fmt.Fprintf(out, "  %-6s %14s %14s %10s\n", "size", "adaptive", "static", "ratio")
	fmt.Fprintf(csv, "fig10,size,adaptive_ms,static_ms,ratio\n")
	for _, r := range rows {
		fmt.Fprintf(out, "  %-6s %12dms %12dms %9.1fx\n",
			r.Label, r.Adaptive.Milliseconds(), r.Static.Milliseconds(), r.Ratio)
		fmt.Fprintf(csv, "fig10,%s,%d,%d,%.2f\n", r.Label,
			r.Adaptive.Milliseconds(), r.Static.Milliseconds(), r.Ratio)
	}
	fmt.Fprintln(out)
	csv.WriteString("\n")
	return nil
}

func clone(out io.Writer, csv *strings.Builder, doc map[string]any, rooms int) error {
	fmt.Fprintf(out, "== Demo 2 — clone-dispatch slideshow to %d overflow rooms ==\n", rooms)
	results, err := bench.RunCloneFanout(rooms, 3_000_000)
	if err != nil {
		return err
	}
	record(doc, "clone", map[string]any{"rooms": rooms, "slide_bytes": 3_000_000}, results)
	fmt.Fprintf(out, "  %-10s %10s %10s %12s %6s\n", "room", "clone", "bytes", "inter-space", "sync")
	fmt.Fprintf(csv, "clone,room,clone_ms,bytes,inter_space,sync_ms\n")
	for _, r := range results {
		fmt.Fprintf(out, "  %-10s %8dms %10d %12v %4dms\n",
			r.Room, r.Report.Total().Milliseconds(), r.Report.BytesMoved,
			r.InterSpace, r.SyncRTT.Milliseconds())
		fmt.Fprintf(csv, "clone,%s,%d,%d,%v,%d\n", r.Room,
			r.Report.Total().Milliseconds(), r.Report.BytesMoved,
			r.InterSpace, r.SyncRTT.Milliseconds())
	}
	fmt.Fprintln(out)
	csv.WriteString("\n")
	return nil
}

func churn(out io.Writer, csv *strings.Builder, doc map[string]any, spaces int, songBytes int64) error {
	fmt.Fprintf(out, "== Churn — kill the app's host in a %d-space federation ==\n", spaces)
	fmt.Fprintln(out, "   (wall-clock protocol timings at a 2ms probe / 40ms suspicion cadence)")
	res, err := bench.RunChurnSized(spaces, bench.ChurnConfig(), songBytes)
	if err != nil {
		return err
	}
	record(doc, "churn", map[string]any{"spaces": spaces, "song_bytes": songBytes, "state": "off"}, res)
	fmt.Fprintf(out, "  gossip convergence (kill -> all survivors convict): %v\n", res.Convergence)
	fmt.Fprintf(out, "  failover (conviction -> app running on %s): %v\n", res.NewHost, res.Failover)
	fmt.Fprintf(out, "  total outage: %v (skeleton relaunch: in-flight state lost)\n", res.Total)

	sres, err := bench.RunChurnSized(spaces, bench.ChurnStateConfig(), songBytes)
	if err != nil {
		return err
	}
	record(doc, "churn_with_state", map[string]any{"spaces": spaces, "song_bytes": songBytes, "state": "on"}, sres)
	fmt.Fprintln(out, "  -- with snapshot-state replication (ReplicateState on) --")
	fmt.Fprintf(out, "  snapshot replication (state write -> every survivor center): %v\n", sres.Replication)
	fmt.Fprintf(out, "  record: %d bytes total, %d-delta chain; the planted state crossed as a %d-byte frame\n",
		sres.SnapshotBytes, sres.SnapshotDeltas, sres.DeltaBytes)
	fmt.Fprintf(out, "  failover with state (conviction -> app resumed on %s): %v\n", sres.NewHost, sres.Failover)
	fmt.Fprintf(out, "  total outage: %v, state intact: %v\n", sres.Total, sres.StateIntact)

	cres, err := bench.RunCleanStop(spaces, bench.ChurnStateConfig(), songBytes)
	if err != nil {
		return err
	}
	record(doc, "churn_clean_stop", map[string]any{"spaces": spaces, "song_bytes": songBytes}, cres)
	fmt.Fprintln(out, "  -- clean stop (final flush + intentional-leave broadcast) --")
	fmt.Fprintf(out, "  shutdown flush (SyncNow -> state on every survivor center): %v\n", cres.Flush)
	fmt.Fprintf(out, "  conviction (leave broadcast, no suspicion window): %v\n", cres.Conviction)
	fmt.Fprintf(out, "  failover (conviction -> app resumed on %s): %v\n", cres.NewHost, cres.Failover)
	fmt.Fprintf(out, "  total outage: %v, state intact: %v\n", cres.Total, cres.StateIntact)
	fmt.Fprintln(out)
	fmt.Fprintf(csv, "churn,spaces,state,convergence_ms,failover_ms,total_ms,replication_ms,snapshot_bytes,delta_bytes,chain,state_intact,new_host\n")
	fmt.Fprintf(csv, "churn,%d,off,%d,%d,%d,,,,,,%s\n", spaces,
		res.Convergence.Milliseconds(), res.Failover.Milliseconds(),
		res.Total.Milliseconds(), res.NewHost)
	fmt.Fprintf(csv, "churn,%d,on,%d,%d,%d,%d,%d,%d,%d,%v,%s\n", spaces,
		sres.Convergence.Milliseconds(), sres.Failover.Milliseconds(),
		sres.Total.Milliseconds(), sres.Replication.Milliseconds(),
		sres.SnapshotBytes, sres.DeltaBytes, sres.SnapshotDeltas, sres.StateIntact, sres.NewHost)
	fmt.Fprintf(csv, "churn,%d,clean-stop,%d,%d,%d,%d,,,,%v,%s\n\n", spaces,
		cres.Conviction.Milliseconds(), cres.Failover.Milliseconds(),
		cres.Total.Milliseconds(), cres.Flush.Milliseconds(), cres.StateIntact, cres.NewHost)
	return nil
}

func delta(out io.Writer, csv *strings.Builder, doc map[string]any, ticks int) error {
	fmt.Fprintln(out, "== Delta — replicated bytes per capture tick, full-frame vs delta pipeline ==")
	fmt.Fprintf(out, "   (media player, one small playback write per tick, %d ticks per cell)\n", ticks)
	sizes := []int64{500_000, 2_000_000, 8_000_000}
	points, err := bench.RunDeltaSweep(sizes, ticks)
	if err != nil {
		return err
	}
	record(doc, "delta", map[string]any{"ticks": ticks, "song_bytes": sizes}, points)
	fmt.Fprintf(out, "  %-10s %-6s %12s %12s %7s %7s %7s %7s\n",
		"song", "mode", "base-bytes", "bytes/tick", "full", "delta", "idle0", "intact")
	fmt.Fprintf(csv, "delta,song_bytes,mode,ticks,base_bytes,bytes_per_tick,full_frames,delta_frames,skipped_clean,state_intact\n")
	// bytes/tick pairs: remember the full-mode figure to print the ratio.
	perTick := make(map[int64]int64)
	for _, p := range points {
		fmt.Fprintf(out, "  %-10d %-6s %12d %12d %7d %7d %7d %7v",
			p.SongBytes, p.Mode, p.BaseBytes, p.BytesPerTick,
			p.FullFrames, p.DeltaFrames, p.SkippedClean, p.StateIntact)
		if p.Mode == "full" {
			perTick[p.SongBytes] = p.BytesPerTick
		} else if fullBytes := perTick[p.SongBytes]; fullBytes > 0 && p.BytesPerTick > 0 {
			fmt.Fprintf(out, "  (%.0fx fewer bytes)", float64(fullBytes)/float64(p.BytesPerTick))
		}
		fmt.Fprintln(out)
		fmt.Fprintf(csv, "delta,%d,%s,%d,%d,%d,%d,%d,%d,%v\n", p.SongBytes, p.Mode, p.Ticks,
			p.BaseBytes, p.BytesPerTick, p.FullFrames, p.DeltaFrames, p.SkippedClean, p.StateIntact)
	}
	fmt.Fprintln(out)
	csv.WriteString("\n")
	return nil
}

func flap(out io.Writer, csv *strings.Builder, doc map[string]any, spaces int, period time.Duration, cycles int) error {
	fmt.Fprintf(out, "== Flap — toggle one link every %v for %d cycles in a %d-space federation ==\n",
		period, cycles, spaces)
	fmt.Fprintln(out, "   (indirect probes should mask a single flapping link: no false convictions)")
	res, err := bench.RunFlap(spaces, bench.ChurnConfig(), period, cycles)
	if err != nil {
		return err
	}
	record(doc, "flap", map[string]any{"spaces": spaces, "period_ms": period.Milliseconds(), "cycles": cycles}, res)
	fmt.Fprintf(out, "  false suspicions on the flapped pair: %d\n", res.Suspicions)
	fmt.Fprintf(out, "  false dead convictions: %d\n", res.Convictions)
	fmt.Fprintf(out, "  healed after schedule: %v (in %v)\n", res.Healed, res.HealTime)
	fmt.Fprintln(out)
	fmt.Fprintf(csv, "flap,spaces,period_ms,cycles,suspicions,convictions,healed,heal_ms\n")
	fmt.Fprintf(csv, "flap,%d,%d,%d,%d,%d,%v,%d\n\n", spaces, period.Milliseconds(), cycles,
		res.Suspicions, res.Convictions, res.Healed, res.HealTime.Milliseconds())
	return nil
}

func durability(out io.Writer, csv *strings.Builder, doc map[string]any, spaces, writes int) error {
	fmt.Fprintf(out, "== Durability — kill the writing center after %d writes per phase, per write concern ==\n", writes)
	fmt.Fprintln(out, "   (phase 1: healthy federation; phase 2: writer cut off, then killed before any retry)")
	fmt.Fprintln(out, "   silent loss = writes reported OK that no surviving center holds")
	concerns := []cluster.WriteConcern{cluster.WriteAsync, cluster.WriteOne, cluster.WriteQuorum}
	var results []bench.DurabilityResult
	fmt.Fprintf(out, "  %-8s %12s %12s %12s %12s %12s %8s %12s %10s\n",
		"concern", "write-lat", "snap-lat", "wiresnap-gob", "wiresnap-v2", "cutoff-lat", "flagged", "silent-loss", "lost-total")
	fmt.Fprintf(csv, "durability,concern,spaces,writes,write_lat_us,snap_lat_us,wire_snap_gob_us,wire_snap_fast_us,cutoff_lat_us,flagged,silent_loss,lost_total,durable\n")
	for _, wc := range concerns {
		res, err := bench.RunDurability(spaces, writes, wc)
		if err != nil {
			return err
		}
		results = append(results, res)
		fmt.Fprintf(out, "  %-8s %10dµs %10dµs %10dµs %10dµs %10dµs %8d %12d %10d\n",
			res.Concern, res.HealthyLatency.Microseconds(), res.SnapLatency.Microseconds(),
			res.WireSnapGob.Microseconds(), res.WireSnapFast.Microseconds(),
			res.DegradedLatency.Microseconds(), res.Flagged, res.SilentLoss, res.LostTotal)
		fmt.Fprintf(csv, "durability,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			res.Concern, res.Spaces, res.Writes,
			res.HealthyLatency.Microseconds(), res.SnapLatency.Microseconds(),
			res.WireSnapGob.Microseconds(), res.WireSnapFast.Microseconds(),
			res.DegradedLatency.Microseconds(), res.Flagged, res.SilentLoss, res.LostTotal, res.Durable)
	}
	fmt.Fprintln(out)
	csv.WriteString("\n")
	record(doc, "durability", map[string]any{"spaces": spaces, "writes": writes}, results)
	return nil
}

func ctlFig(out io.Writer, csv *strings.Builder, doc map[string]any, requests, watchers, events int) error {
	fmt.Fprintf(out, "== Control plane — request round-trip and Watch fan-out (%d reqs, %d watchers, %d events) ==\n",
		requests, watchers, events)
	res, err := bench.RunCtl(requests, watchers, events)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  request rtt: info %dµs, apps %dµs\n",
		res.InfoRTT.Microseconds(), res.AppsRTT.Microseconds())
	fmt.Fprintf(out, "  %-12s %10s %10s %8s %14s\n",
		"", "delivered", "lost", "elapsed", "events/sec")
	for _, f := range []bench.CtlFanout{res.V1, res.V2} {
		fmt.Fprintf(out, "  watch-%-6s %10d %10d %6dms %14.0f\n",
			f.Proto, f.Delivered, f.Lost, f.Elapsed.Milliseconds(), f.EventsPerSec)
	}
	fmt.Fprintf(out, "  %-12s %10d %10d %6dms %14.0f   (%d live + %d replayed)\n",
		"replay", int64(res.Replay.Replayed), res.Replay.Lost,
		res.Replay.Elapsed.Milliseconds(), res.Replay.EventsPerSec,
		res.Replay.Live, res.Replay.Replayed)
	fmt.Fprintf(csv, "ctl,row,requests,watchers,events,info_rtt_us,apps_rtt_us,delivered,lost,elapsed_ms,events_per_sec\n")
	for _, f := range []bench.CtlFanout{res.V1, res.V2} {
		fmt.Fprintf(csv, "ctl,watch-%s,%d,%d,%d,%d,%d,%d,%d,%d,%.0f\n",
			f.Proto, res.Requests, f.Watchers, f.Published,
			res.InfoRTT.Microseconds(), res.AppsRTT.Microseconds(),
			f.Delivered, f.Lost, f.Elapsed.Milliseconds(), f.EventsPerSec)
	}
	fmt.Fprintf(csv, "ctl,replay,%d,1,%d,%d,%d,%d,%d,%d,%.0f\n\n",
		res.Requests, res.Replay.Burst,
		res.InfoRTT.Microseconds(), res.AppsRTT.Microseconds(),
		int64(res.Replay.Replayed), res.Replay.Lost,
		res.Replay.Elapsed.Milliseconds(), res.Replay.EventsPerSec)
	fmt.Fprintln(out)
	record(doc, "ctl", map[string]any{"requests": requests, "watchers": watchers, "events": events}, res)
	return nil
}

func obsFig(out io.Writer, csv *strings.Builder, doc map[string]any, iters int) error {
	fmt.Fprintf(out, "== Observability — instrumentation overhead on the capture fast path (%d iters) ==\n", iters)
	fmt.Fprintln(out, "   (idle tick = dirty-tracked clean skip; PR 3 baseline ~249 ns uninstrumented)")
	res, err := bench.RunObs(iters)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  counter inc:        %v/op\n", res.CounterInc)
	fmt.Fprintf(out, "  histogram observe:  %v/op\n", res.HistObserve)
	fmt.Fprintf(out, "  instrumented idle capture tick: %v (%d metric op on the path)\n", res.IdleTick, res.IdleOps)
	fmt.Fprintf(out, "  estimated overhead: %v -> ratio %.3fx (acceptance bar: 2x)\n", res.Overhead, res.OverheadRatio)
	fmt.Fprintf(out, "  /metrics exposition: %v over %d series\n", res.Exposition, res.Series)
	fmt.Fprintln(out)
	fmt.Fprintf(csv, "obs,iters,counter_inc_ns,hist_observe_ns,idle_tick_ns,idle_ops,overhead_ns,overhead_ratio,exposition_ns,series\n")
	fmt.Fprintf(csv, "obs,%d,%d,%d,%d,%d,%d,%.3f,%d,%d\n\n", res.Iters,
		res.CounterInc.Nanoseconds(), res.HistObserve.Nanoseconds(),
		res.IdleTick.Nanoseconds(), res.IdleOps, res.Overhead.Nanoseconds(),
		res.OverheadRatio, res.Exposition.Nanoseconds(), res.Series)
	record(doc, "obs", map[string]any{"iters": iters}, res)
	return nil
}

// parseHostCounts parses a comma-separated list of sweep sizes.
func parseHostCounts(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad host count %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func members(out io.Writer, csv *strings.Builder, doc map[string]any, hostsSpec, baselineSpec string) error {
	hosts, err := parseHostCounts(hostsSpec)
	if err != nil {
		return err
	}
	baseline, err := parseHostCounts(baselineSpec)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "== Members — gossip dissemination at scale: bounded piggyback vs full-table ==")
	fmt.Fprintln(out, "   (synchronous protocol rounds over netsim; kill-wall includes the suspicion window)")
	fmt.Fprintf(out, "  %-6s %-6s %10s %9s %8s %12s %6s %6s %10s %6s\n",
		"hosts", "mode", "bytes/msg", "upd/msg", "B/host/s", "bootstrap", "join", "kill", "kill-wall", "false")
	fmt.Fprintf(csv, "members,hosts,mode,bytes_per_msg,updates_per_msg,bytes_per_host_sec,bootstrap_rounds,join_rounds,kill_rounds,kill_wall_ms,false_suspects,false_convictions\n")
	row := func(r bench.MembersResult) {
		mode := "bounded"
		if r.FullTable {
			mode = "full"
		}
		fmt.Fprintf(out, "  %-6d %-6s %10.0f %9.1f %8.0f %12d %6d %6d %8dms %6d\n",
			r.Hosts, mode, r.BytesPerMsg, r.UpdatesPerMsg, r.BytesPerHostSec,
			r.BootstrapRounds, r.JoinRounds, r.KillRounds, r.KillWall.Milliseconds(),
			r.FalseSuspects+r.FalseConvictions)
		fmt.Fprintf(csv, "members,%d,%s,%.1f,%.2f,%.1f,%d,%d,%d,%d,%d,%d\n",
			r.Hosts, mode, r.BytesPerMsg, r.UpdatesPerMsg, r.BytesPerHostSec,
			r.BootstrapRounds, r.JoinRounds, r.KillRounds, r.KillWall.Milliseconds(),
			r.FalseSuspects, r.FalseConvictions)
	}
	var bounded, full []bench.MembersResult
	boundedRate := map[int]float64{}
	for _, n := range hosts {
		r, err := bench.RunMembers(n, bench.MembersConfig())
		if err != nil {
			return err
		}
		bounded = append(bounded, r)
		boundedRate[n] = r.BytesPerHostSec
		row(r)
	}
	for _, n := range baseline {
		cfg := bench.MembersConfig()
		cfg.FullTableGossip = true
		r, err := bench.RunMembers(n, cfg)
		if err != nil {
			return err
		}
		full = append(full, r)
		row(r)
		if b := boundedRate[n]; b > 0 {
			fmt.Fprintf(out, "         -> bounded dissemination sends %.1fx fewer bytes/host/sec at %d hosts\n",
				r.BytesPerHostSec/b, n)
		}
	}
	fmt.Fprintln(out)
	csv.WriteString("\n")
	record(doc, "members", map[string]any{"hosts": hosts, "baseline_hosts": baseline},
		map[string]any{"bounded": bounded, "full_table": full})
	return nil
}

func storeFig(out io.Writer, csv *strings.Builder, doc map[string]any, cfg bench.StoreConfig, crashTrials int, crashAfter time.Duration) error {
	fmt.Fprintf(out, "== Store — mixed registry/snapshot writes at %d resident records (%d writers, %d ops) ==\n",
		cfg.Records, cfg.Writers, cfg.Ops)
	mix := "record-only"
	if cfg.BlobEvery > 0 {
		mix = fmt.Sprintf("every %dth write a %dKB snapshot frame", cfg.BlobEvery, cfg.BlobBytes/1024)
	}
	fmt.Fprintf(out, "   (%dB records, %s; seed interval = Sync ticker every %v, held under the seed's global write lock)\n",
		cfg.ValueBytes, mix, store.DefaultSyncEvery)
	rows := []struct {
		engine string
		pol    store.SyncPolicy
	}{
		{"seed", store.SyncNever},
		{"seed", store.SyncInterval},
		{"engine", store.SyncNever},
		{"engine", store.SyncInterval},
		{"engine", store.SyncAlways},
	}
	fmt.Fprintf(out, "  %-8s %-9s %14s %14s %10s %10s %12s\n",
		"engine", "sync", "load-w/s", "writes/sec", "p50", "p99", "disk-bytes")
	fmt.Fprintf(csv, "store,engine,sync,records,writers,ops,load_writes_per_sec,writes_per_sec,p50_us,p99_us,blob_writes,disk_bytes\n")
	var results []bench.StoreResult
	var seedRate, engineRate float64
	for _, r := range rows {
		res, err := bench.RunStore(cfg, r.engine, r.pol)
		if err != nil {
			return err
		}
		results = append(results, res)
		// The headline ratio compares matched durability: both sides
		// fsync on the same cadence, so it isolates the architecture
		// (off-lock group commit vs fsync under the global write lock).
		if res.Sync == store.SyncInterval.String() {
			if res.Engine == "seed" {
				seedRate = res.WritesPerSec
			} else {
				engineRate = res.WritesPerSec
			}
		}
		fmt.Fprintf(out, "  %-8s %-9s %14.0f %14.0f %9dµs %9dµs %12d\n",
			res.Engine, res.Sync, res.LoadWritesPerSec, res.WritesPerSec,
			res.P50.Microseconds(), res.P99.Microseconds(), res.DiskBytes)
		fmt.Fprintf(csv, "store,%s,%s,%d,%d,%d,%.0f,%.0f,%d,%d,%d,%d\n",
			res.Engine, res.Sync, res.Records, res.Writers, res.Ops,
			res.LoadWritesPerSec, res.WritesPerSec,
			res.P50.Microseconds(), res.P99.Microseconds(), res.BlobWrites, res.DiskBytes)
	}
	if seedRate > 0 && engineRate > 0 {
		fmt.Fprintf(out, "  -> engine sustains %.1fx the seed store's writes/sec at matched durability (%v fsync cadence)\n", engineRate/seedRate, store.DefaultSyncEvery)
	}

	var crash bench.StoreCrashResult
	if crashTrials > 0 {
		var err error
		crash, err = bench.RunStoreCrash(crashTrials, crashAfter)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  kill-mid-commit audit (SyncPolicy=always, %d trials): %d acked, %d recovered, %d lost\n",
			crash.Trials, crash.Acked, crash.Recovered, crash.Lost)
		if crash.Lost > 0 {
			return fmt.Errorf("store crash audit: %d acknowledged writes lost", crash.Lost)
		}
		fmt.Fprintf(csv, "store_crash,trials,acked,recovered,lost\nstore_crash,%d,%d,%d,%d\n",
			crash.Trials, crash.Acked, crash.Recovered, crash.Lost)
	}
	fmt.Fprintln(out)
	csv.WriteString("\n")
	record(doc, "store", map[string]any{
		"records": cfg.Records, "writers": cfg.Writers, "ops": cfg.Ops,
		"value_bytes": cfg.ValueBytes, "blob_every": cfg.BlobEvery, "blob_bytes": cfg.BlobBytes,
		"crash_trials": crashTrials,
	}, map[string]any{"rows": results, "crash": crash})
	return nil
}

func bundleFig(out io.Writer, csv *strings.Builder, doc map[string]any, hosts, stateBytes int) error {
	fmt.Fprintf(out, "== Bundle — signed app distribution: one push, %d-host install fan-out (%dKB initial state) ==\n",
		hosts, stateBytes/1024)
	fmt.Fprintln(out, "   (every host fetches, signature-checks, secret-resolves and runs a value-checked instance)")
	res, err := bench.RunBundle(hosts, stateBytes)
	if err != nil {
		return err
	}
	record(doc, "bundle", map[string]any{"hosts": hosts, "state_bytes": stateBytes}, res)
	fmt.Fprintf(out, "  bundle size: %d bytes signed (%d bytes initial state)\n", res.BundleBytes, res.StateBytes)
	fmt.Fprintf(out, "  pack+sign: %v, push (verify+store): %v\n", res.Pack, res.Push)
	fmt.Fprintf(out, "  install fan-out: %v total, %v/host, %.0f instances/sec, %d bytes fetched/host\n",
		res.Install, res.InstallPerHost, res.InstancesPerSec, res.BytesPerHost)
	fmt.Fprintln(out)
	fmt.Fprintf(csv, "bundle,hosts,state_bytes,bundle_bytes,pack_us,push_us,install_ms,install_per_host_us,instances_per_sec,bytes_per_host\n")
	fmt.Fprintf(csv, "bundle,%d,%d,%d,%d,%d,%d,%d,%.0f,%d\n\n",
		res.Hosts, res.StateBytes, res.BundleBytes,
		res.Pack.Microseconds(), res.Push.Microseconds(), res.Install.Milliseconds(),
		res.InstallPerHost.Microseconds(), res.InstancesPerSec, res.BytesPerHost)
	return nil
}

func suspicion(out io.Writer, csv *strings.Builder, doc map[string]any, hosts, cycles int, blip time.Duration, timeoutsSpec string) error {
	var timeouts []time.Duration
	for _, tok := range strings.Split(timeoutsSpec, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad -suspicion-timeouts entry %q: %w", tok, err)
		}
		timeouts = append(timeouts, d)
	}
	fmt.Fprintf(out, "== Suspicion — detection latency vs false positives across SuspicionTimeout (%d hosts) ==\n", hosts)
	fmt.Fprintf(out, "   (per timeout: %d freeze/recover cycles of %v — any conviction is premature — then a real kill)\n",
		cycles, blip)
	points, err := bench.RunSuspicionSweep(hosts, cycles, blip, timeouts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %-9s %10s %10s %12s %9s %12s\n",
		"timeout", "suspects", "convicts", "conv-cycles", "fp-rate", "detect-wall")
	fmt.Fprintf(csv, "suspicion,timeout_ms,hosts,cycles,blip_ms,false_suspects,false_convictions,convicted_cycles,fp_rate,detect_wall_ms\n")
	var recommended time.Duration
	for _, p := range points {
		fmt.Fprintf(out, "  %-9s %10d %10d %12d %9.2f %10dms\n",
			p.Timeout, p.FalseSuspects, p.FalseConvictions, p.ConvictedCycles,
			p.FalsePositiveRate, p.DetectWall.Milliseconds())
		fmt.Fprintf(csv, "suspicion,%d,%d,%d,%d,%d,%d,%d,%.3f,%d\n",
			p.Timeout.Milliseconds(), p.Hosts, p.Cycles, p.Blip.Milliseconds(),
			p.FalseSuspects, p.FalseConvictions, p.ConvictedCycles,
			p.FalsePositiveRate, p.DetectWall.Milliseconds())
		if recommended == 0 && p.ConvictedCycles == 0 {
			recommended = p.Timeout
		}
	}
	if recommended > 0 {
		fmt.Fprintf(out, "  -> smallest timeout with zero premature convictions at a %v freeze: %v (~%.0fx the freeze)\n",
			blip, recommended, float64(recommended)/float64(blip))
	} else {
		fmt.Fprintf(out, "  -> no swept timeout avoided premature convictions at a %v freeze; sweep longer timeouts\n", blip)
	}
	fmt.Fprintln(out)
	csv.WriteString("\n")
	record(doc, "suspicion", map[string]any{
		"hosts": hosts, "cycles": cycles, "blip_ms": blip.Milliseconds(), "timeouts": timeoutsSpec,
	}, points)
	return nil
}
