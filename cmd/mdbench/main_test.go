package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdagent/internal/bench"
	"mdagent/internal/cluster"
)

// TestMain lets the test binary serve as the kill-mid-commit audit
// child when RunStoreCrash re-execs it with the crash env var set.
func TestMain(m *testing.M) {
	if bench.StoreCrashChildMain() {
		return
	}
	os.Exit(m.Run())
}

// TestRunFig7PrintsTableAndCSV runs the fastest figure end to end and
// checks both the table and the CSV sidecar.
func TestRunFig7PrintsTableAndCSV(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "fig7.csv")
	var out bytes.Buffer
	if err := run([]string{"-fig", "7", "-csv", csvPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 7") || !strings.Contains(out.String(), "skew-canceled") {
		t.Fatalf("fig7 table missing:\n%s", out.String())
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "fig7,skew_ms") {
		t.Fatalf("csv header wrong: %q", string(csv[:min(len(csv), 40)]))
	}
}

// TestRunChurnFigure runs the cluster churn experiment through the CLI.
func TestRunChurnFigure(t *testing.T) {
	var out bytes.Buffer
	// Small song: under -race, multi-megabyte snapshot captures at the
	// tight churn cadence can starve the probe loops.
	if err := run([]string{"-fig", "churn", "-spaces", "3", "-song-bytes", "100000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gossip convergence") {
		t.Fatalf("churn output missing:\n%s", out.String())
	}
}

// TestRunRejectsBadFlags covers the flag surface.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "nope"}, &out); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-fig", "churn", "-spaces", "2"}, &out); err == nil {
		t.Fatal("churn with 2 spaces accepted (no quorum possible)")
	}
}

// TestRunFlapFigure runs the flapping-link experiment through the CLI.
func TestRunFlapFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "flap", "-spaces", "3", "-flap-period", "5ms", "-flap-cycles", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "false dead convictions") {
		t.Fatalf("flap output missing:\n%s", out.String())
	}
}

// TestRunDurabilityFigureWithJSON runs the kill-after-write experiment
// through the CLI (comma-separated figure list) and checks the JSON
// document CI uploads as BENCH_pr4.json.
func TestRunDurabilityFigureWithJSON(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "durability", "-spaces", "3", "-dur-writes", "4", "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "silent-loss") {
		t.Fatalf("durability table missing:\n%s", out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("JSON document does not parse: %v", err)
	}
	entry, ok := doc["durability"].(map[string]any)
	if !ok {
		t.Fatalf("durability JSON entry = %v, want self-describing envelope", doc["durability"])
	}
	// Self-describing envelope: the record carries enough context to be
	// interpreted without the CLI invocation that produced it.
	if entry["figure"] != "durability" {
		t.Fatalf("envelope figure = %v, want durability", entry["figure"])
	}
	if g, _ := entry["go"].(string); !strings.HasPrefix(g, "go") {
		t.Fatalf("envelope go version = %v", entry["go"])
	}
	if gp, _ := entry["gomaxprocs"].(float64); gp < 1 {
		t.Fatalf("envelope gomaxprocs = %v", entry["gomaxprocs"])
	}
	knobs, _ := entry["config"].(map[string]any)
	if knobs["spaces"].(float64) != 3 || knobs["writes"].(float64) != 4 {
		t.Fatalf("envelope config = %v, want spaces=3 writes=4", entry["config"])
	}
	results, ok := entry["result"].([]any)
	if !ok || len(results) != 3 {
		t.Fatalf("durability JSON result = %v, want 3 concern results", entry["result"])
	}
	for _, r := range results {
		m := r.(map[string]any)
		if m["Concern"] == string(cluster.WriteQuorum) && m["SilentLoss"].(float64) != 0 {
			t.Fatalf("quorum silent loss in JSON = %v, want 0", m["SilentLoss"])
		}
	}
}

// TestRunStoreFigure runs a smoke-sized storage-engine experiment —
// all four engine rows plus one kill-mid-commit audit trial — and
// checks the zero-acknowledged-loss line.
func TestRunStoreFigure(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "store",
		"-store-records", "2000", "-store-ops", "2000", "-store-writers", "4",
		"-store-blob-every", "16", "-store-blob-bytes", "8192",
		"-store-crash-trials", "1", "-store-crash-after", "100ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "writes/sec") || !strings.Contains(s, "p99") {
		t.Fatalf("store table missing:\n%s", s)
	}
	if !strings.Contains(s, "0 lost") {
		t.Fatalf("kill-mid-commit audit reported losses:\n%s", s)
	}
}

// TestRunSuspicionFigure runs a small timeout sweep and checks the
// recommended-default line appears for the long-timeout end.
func TestRunSuspicionFigure(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "suspicion",
		"-suspicion-hosts", "6", "-suspicion-cycles", "2",
		// The long end must stay clean even when -race slows the tick
		// loop (suspicion runs on wall clocks), so it is generously wide.
		"-suspicion-blip", "30ms", "-suspicion-timeouts", "15ms,2s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "detect-wall") {
		t.Fatalf("suspicion table missing:\n%s", s)
	}
	if !strings.Contains(s, "zero premature convictions") {
		t.Fatalf("no recommended timeout found:\n%s", s)
	}
}

// TestRunDeltaFigure runs the delta sweep through the CLI with a short
// tick count.
func TestRunDeltaFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "delta", "-delta-ticks", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fewer bytes") {
		t.Fatalf("delta sweep output missing the savings ratio:\n%s", out.String())
	}
}
