// Command mdregistry runs an MDAgent registry center as a standalone TCP
// service — the paper's Juddi+MySQL backend (§5). Agent nodes (cmd/
// mdagentd) register applications, resources and device profiles here and
// issue semantic lookups during migration planning.
//
// Standalone (the paper's single-center topology):
//
//	mdregistry -listen 127.0.0.1:7001 -store /var/lib/mdagent/registry
//
// Federated — one center per smart space, replicating records to its
// peers with version vectors (eventually consistent; survives any single
// center's crash):
//
//	mdregistry -listen 127.0.0.1:7001 -space lab1 -fed-peer lab2=127.0.0.1:7005
//	mdregistry -listen 127.0.0.1:7005 -space lab2 -fed-peer lab1=127.0.0.1:7001
//
// -write-concern one|quorum makes every federated write block until that
// many peer centers acknowledged the pushed record, so a record survives
// this center dying right after the write returns (durable-by-write).
//
// Standalone centers serve the endpoint name "registry-center"; federated
// centers serve "registry@<space>" (point mdagentd's -registry and -space
// flags accordingly).
package main

import (
	"context"
	"crypto/ed25519"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mdagent/internal/bundle"
	"mdagent/internal/cluster"
	"mdagent/internal/core"
	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/obs"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/store"
	"mdagent/internal/transport"
)

// trustList accumulates repeated -trust-key hex Ed25519 public keys.
type trustList []ed25519.PublicKey

func (t *trustList) String() string {
	parts := make([]string, 0, len(*t))
	for _, k := range *t {
		parts = append(parts, bundle.FormatPublicKey(k))
	}
	return strings.Join(parts, ",")
}

func (t *trustList) Set(v string) error {
	k, err := bundle.ParsePublicKey(v)
	if err != nil {
		return err
	}
	*t = append(*t, k)
	return nil
}

// fedPeers accumulates repeated -fed-peer space=addr flags.
type fedPeers map[string]string

func (p fedPeers) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (p fedPeers) Set(v string) error {
	space, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want space=addr, got %q", v)
	}
	p[space] = addr
	return nil
}

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	switch err := run(os.Args[1:], os.Stdout, nil, stop); {
	case err == nil, errors.Is(err, flag.ErrHelp):
	default:
		log.Fatalf("mdregistry: %v", err)
	}
}

// run is the testable body of mdregistry: it parses args, serves until
// stop closes, and reports the bound listen address through ready (when
// non-nil) once the center is reachable.
func run(args []string, out io.Writer, ready func(addr string), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("mdregistry", flag.ContinueOnError)
	fs.SetOutput(out)
	listen := fs.String("listen", "127.0.0.1:7001", "TCP listen address")
	storePath := fs.String("store", "", "storage engine directory (empty = in-memory)")
	storeSync := fs.String("store-sync", "interval", "WAL fsync policy: always, interval, or never")
	storeSyncEvery := fs.Duration("store-sync-every", 0, "fsync cadence under -store-sync interval (0 = engine default)")
	storeSegBytes := fs.Int64("store-segment-bytes", 0, "WAL segment roll size in bytes (0 = engine default)")
	storeBlobMin := fs.Int("store-blob-threshold", 0, "values >= this many bytes go to the blob log (0 = engine default)")
	storeShards := fs.Int("store-shards", 0, "index shard count, rounded up to a power of two (0 = engine default)")
	space := fs.String("space", "", "smart space served by this center (empty = standalone)")
	peers := fedPeers{}
	fs.Var(peers, "fed-peer", "federated peer center space=addr (repeatable; requires -space)")
	concern := fs.String("write-concern", "", "federation write durability: async (default), one, or quorum (requires -space)")
	debugAddr := fs.String("debug-addr", "", "HTTP debug listen address: /metrics, /healthz, /debug/pprof (empty = off)")
	trusted := trustList{}
	fs.Var(&trusted, "trust-key", "trusted bundle publisher key, hex ed25519 public key (repeatable; none = refuse every bundle push)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *space == "" && len(peers) > 0 {
		return fmt.Errorf("-fed-peer requires -space")
	}
	wc, err := cluster.ParseWriteConcern(*concern)
	if err != nil {
		return err
	}
	if *space == "" && wc != cluster.WriteAsync {
		return fmt.Errorf("-write-concern %s requires -space (a standalone registry has no peers to ack)", wc)
	}

	db := store.OpenMemory()
	if *storePath != "" {
		pol, err := store.ParseSyncPolicy(*storeSync)
		if err != nil {
			return err
		}
		opts := []store.Option{store.WithSyncPolicy(pol)}
		if *storeSyncEvery > 0 {
			opts = append(opts, store.WithSyncEvery(*storeSyncEvery))
		}
		if *storeSegBytes > 0 {
			opts = append(opts, store.WithSegmentBytes(*storeSegBytes))
		}
		if *storeBlobMin > 0 {
			opts = append(opts, store.WithBlobThreshold(*storeBlobMin))
		}
		if *storeShards > 0 {
			opts = append(opts, store.WithShards(*storeShards))
		}
		db, err = store.Open(*storePath, opts...)
		if err != nil {
			return err
		}
	}
	defer db.Close()

	reg, err := registry.New(db)
	if err != nil {
		return err
	}
	endpoint := "registry-center"
	if *space != "" {
		endpoint = cluster.CenterEndpointName(*space)
	}
	node, err := transport.ListenTCP(endpoint, *listen)
	if err != nil {
		return err
	}
	defer node.Close()

	// The center's local kernel feeds the control plane's Watch stream
	// (durability outcomes, for now); the ctl alias lets an operator
	// reach the control plane knowing only the listen address.
	kernel := ctxkernel.NewKernel()
	node.AddAlias(ctl.Alias)

	if *space == "" {
		reg.Serve(node.Endpoint())
		ctlSrv := ctl.NewServer(registryBackend(*space, reg, nil, kernel, trusted))
		ctlSrv.Serve(node.Endpoint())
		defer ctlSrv.Close()
		fmt.Fprintf(out, "mdregistry: serving registry-center on %s (store: %s)\n", node.Addr(), storeDesc(*storePath))
	} else {
		center := cluster.NewCenter(*space, reg, node.Endpoint(), cluster.Config{WriteConcern: wc})
		for peerSpace, addr := range peers {
			peerEndpoint := cluster.CenterEndpointName(peerSpace)
			node.AddPeer(peerEndpoint, addr)
			center.AddPeer(peerSpace, peerEndpoint)
		}
		center.OnDurability(func(ev cluster.DurabilityEvent) {
			kernel.PublishTyped("cluster", ctxkernel.FederationWriteEvent{
				Space: *space, Key: ev.Key, Concern: string(ev.Concern),
				Acked: ev.Acked, Required: ev.Required,
				Durable: ev.Durable, Degraded: ev.Degraded, At: time.Now(),
			})
		})
		center.Serve(node.Endpoint())
		center.Start()
		defer center.Stop()
		ctlSrv := ctl.NewServer(registryBackend(*space, reg, center, kernel, trusted))
		ctlSrv.Serve(node.Endpoint())
		defer ctlSrv.Close()
		fmt.Fprintf(out, "mdregistry: serving %s on %s, federated with %d peer(s) (store: %s, write concern: %s)\n",
			endpoint, node.Addr(), len(peers), storeDesc(*storePath), wc)
	}

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(out, "mdregistry: debug on %s\n", dbg.Addr())
	}

	if ready != nil {
		ready(node.Addr())
	}
	<-stop
	fmt.Fprintln(out, "mdregistry: shutting down")
	return nil
}

func storeDesc(path string) string {
	if path == "" {
		return "in-memory"
	}
	return path
}

// Bundle accounting — the same metric names every mdagent process
// registers, so /metrics reads identically across the fleet.
var (
	mBundlePushes   = obs.Default.Counter("mdagent_bundle_pushes_total")
	mBundleRejected = obs.Default.Counter("mdagent_bundle_rejected_total")
	mBundleBytes    = obs.Default.Counter("mdagent_bundle_bytes_total")
)

// registryBackend is the center's control-plane surface: registry views,
// bundle distribution, and the Watch stream. Lifecycle operations stay
// unsupported — a registry center runs no applications.
func registryBackend(space string, reg *registry.Registry, center *cluster.Center, kernel *ctxkernel.Kernel, trusted []ed25519.PublicKey) ctl.Backend {
	b := ctl.Backend{
		Info: func(context.Context) (ctl.ServerInfo, error) {
			return ctl.ServerInfo{Role: "registry", Space: space}, nil
		},
		Apps: func(context.Context) ([]ctl.AppInfo, error) {
			recs, err := reg.Apps()
			if err != nil {
				return nil, err
			}
			var heads []state.SnapshotHead
			if center != nil {
				heads = center.SnapshotHeads()
			}
			return ctl.JoinApps(recs, heads), nil
		},
		PushBundle: func(ctx context.Context, name string, raw []byte) error {
			// The center is the trust gate for the whole federation: a
			// push lands here once and replicates everywhere, so an
			// unsigned or untrusted artifact must die here.
			b, err := bundle.Open(raw, trusted)
			if err != nil {
				mBundleRejected.Inc()
				return fmt.Errorf("mdregistry: refuse bundle %q: %w", name, err)
			}
			if b.Manifest.App != name {
				mBundleRejected.Inc()
				return fmt.Errorf("mdregistry: refuse bundle: %w: named %q but manifest declares %q",
					bundle.ErrCorrupt, name, b.Manifest.App)
			}
			if center != nil {
				// A durability shortfall still stored the bundle locally;
				// anti-entropy finishes the fan-out (same contract as the
				// registry write handlers).
				if err := center.PutBundle(ctx, name, raw); err != nil && !errors.Is(err, state.ErrNotDurable) {
					return err
				}
			} else if err := reg.PutBundle(name, raw); err != nil {
				return err
			}
			mBundlePushes.Inc()
			mBundleBytes.Add(int64(len(raw)))
			return nil
		},
		ListBundles: func(context.Context) ([]ctl.BundleInfo, error) {
			infos, err := reg.Bundles()
			if err != nil {
				return nil, err
			}
			out := make([]ctl.BundleInfo, 0, len(infos))
			for _, info := range infos {
				out = append(out, ctl.BundleInfo{Name: info.Name, Bytes: info.Bytes})
			}
			return out, nil
		},
		Metrics: core.ObsMetrics,
		Kernel:  kernel,
	}
	if center != nil {
		b.Snapshots = func(context.Context) ([]state.SnapshotHead, error) {
			return center.SnapshotHeads(), nil
		}
	}
	return b
}
