// Command mdregistry runs the MDAgent registry center as a standalone TCP
// service — the paper's Juddi+MySQL backend (§5). Agent nodes (cmd/
// mdagentd) register applications, resources and device profiles here and
// issue semantic lookups during migration planning.
//
// Usage:
//
//	mdregistry -listen 127.0.0.1:7001 -store /var/lib/mdagent/registry.log
//
// The endpoint name is fixed to "registry-center"; point mdagentd's
// -registry flag at the listen address.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"mdagent/internal/registry"
	"mdagent/internal/store"
	"mdagent/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "TCP listen address")
	storePath := flag.String("store", "", "append-only store path (empty = in-memory)")
	flag.Parse()

	db := store.OpenMemory()
	if *storePath != "" {
		var err error
		db, err = store.Open(*storePath)
		if err != nil {
			log.Fatalf("mdregistry: %v", err)
		}
	}
	defer db.Close()

	reg, err := registry.New(db)
	if err != nil {
		log.Fatalf("mdregistry: %v", err)
	}
	node, err := transport.ListenTCP("registry-center", *listen)
	if err != nil {
		log.Fatalf("mdregistry: %v", err)
	}
	defer node.Close()
	reg.Serve(node.Endpoint())
	fmt.Printf("mdregistry: serving registry-center on %s (store: %s)\n", node.Addr(), storeDesc(*storePath))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("mdregistry: shutting down")
}

func storeDesc(path string) string {
	if path == "" {
		return "in-memory"
	}
	return path
}
