package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mdagent/internal/cluster"
	"mdagent/internal/registry"
	"mdagent/internal/transport"
	"mdagent/internal/wsdl"
)

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startCenter runs mdregistry's run() in a goroutine and returns the
// bound address.
func startCenter(t *testing.T, out *syncBuffer, args ...string) string {
	t.Helper()
	stop := make(chan struct{})
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(args, out, func(addr string) { addrc <- addr }, stop)
	}()
	t.Cleanup(func() {
		close(stop)
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("center %v exited: %v", args, err)
			}
		case <-time.After(10 * time.Second):
			t.Errorf("center %v did not shut down", args)
		}
	})
	select {
	case addr := <-addrc:
		return addr
	case err := <-errc:
		t.Fatalf("center %v failed: %v", args, err)
	case <-time.After(10 * time.Second):
		t.Fatalf("center %v never became ready", args)
	}
	return ""
}

// TestFederatedCentersReplicateOverTCP boots two federated mdregistry
// processes in-process: a registration written to lab1's center must
// appear at lab2's center, with the version-vector machinery deciding
// the record's fate, all over real TCP.
func TestFederatedCentersReplicateOverTCP(t *testing.T) {
	// Boot lab2 first (no peers yet), then lab1 pointing at lab2. lab1's
	// pushes reach lab2 directly; lab2 learns of lab1's records through
	// lab1's anti-entropy digests (the reply carries nothing, but the
	// push does) — so write at lab1 and read at lab2.
	var out2 syncBuffer
	addr2 := startCenter(t, &out2, "-listen", "127.0.0.1:0", "-space", "lab2")
	var out1 syncBuffer
	addr1 := startCenter(t, &out1, "-listen", "127.0.0.1:0", "-space", "lab1",
		"-fed-peer", "lab2="+addr2)

	// A client node talks the plain registry protocol to lab1's center.
	client, err := transport.ListenTCP("test-client", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.AddPeer(cluster.CenterEndpointName("lab1"), addr1)
	client.AddPeer(cluster.CenterEndpointName("lab2"), addr2)
	lab1 := registry.NewClient(client.Endpoint(), cluster.CenterEndpointName("lab1"))
	lab2 := registry.NewClient(client.Endpoint(), cluster.CenterEndpointName("lab2"))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec := registry.AppRecord{
		Name: "smart-media-player", Host: "hostA", Space: "lab1",
		Description: wsdl.Description{
			Name: "smart-media-player",
			Services: []wsdl.Service{{Name: "s", Ports: []wsdl.Port{{
				Name: "p", Operations: []wsdl.Operation{{Name: "play"}},
			}}}},
		},
		Components: []string{"player-ui"}, Running: true,
	}
	if err := lab1.RegisterApp(ctx, rec); err != nil {
		t.Fatal(err)
	}

	// The record replicates to lab2's center.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, found, err := lab2.LookupApp(ctx, "smart-media-player", "hostA")
		if err == nil && found {
			if !got.Running || got.Space != "lab1" {
				t.Fatalf("replicated record mangled: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("record never replicated to lab2 (out1:\n%s\nout2:\n%s)", out1.String(), out2.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Unregistration tombstones federation-wide.
	if err := lab1.UnregisterApp(ctx, "smart-media-player", "hostA"); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, found, err := lab2.LookupApp(ctx, "smart-media-player", "hostA")
		if err == nil && !found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tombstone never replicated to lab2")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStandaloneServesLegacyName keeps the paper topology working: no
// -space means the center answers as "registry-center".
func TestStandaloneServesLegacyName(t *testing.T) {
	var out syncBuffer
	addr := startCenter(t, &out, "-listen", "127.0.0.1:0")
	if !strings.Contains(out.String(), "registry-center") {
		t.Fatalf("standalone banner missing: %s", out.String())
	}

	client, err := transport.ListenTCP("test-client", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.AddPeer("registry-center", addr)
	cat := registry.NewClient(client.Endpoint(), "registry-center")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cat.RegisterDevice(ctx, wsdl.DeviceProfile{Host: "h1", MemoryMB: 64}); err != nil {
		t.Fatal(err)
	}
	if _, found, err := cat.Device(ctx, "h1"); err != nil || !found {
		t.Fatalf("device roundtrip: found=%v err=%v", found, err)
	}
}

// TestRunRejectsBadFlags covers the flag surface.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, nil, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-fed-peer", "lab2=127.0.0.1:9"}, &out, nil, nil); err == nil {
		t.Fatal("-fed-peer without -space accepted")
	}
	if err := run([]string{"-space", "lab1", "-fed-peer", "garbage"}, &out, nil, nil); err == nil {
		t.Fatal("malformed -fed-peer accepted")
	}
}
