module mdagent

go 1.23
