module mdagent

go 1.24
