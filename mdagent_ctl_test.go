package mdagent_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mdagent"
	"mdagent/internal/ctl"
	"mdagent/internal/demoapps"
	"mdagent/internal/transport"
)

// newControlDeployment builds a clustered two-host deployment with state
// replication, serves its control plane on the local fabric, and returns
// a client speaking it.
func newControlDeployment(t *testing.T) (*mdagent.Middleware, *mdagent.Client) {
	t.Helper()
	mw, err := mdagent.New(mdagent.Config{Seed: 21, Cluster: &mdagent.ClusterConfig{
		ProbeInterval:     2 * time.Millisecond,
		ProbeTimeout:      25 * time.Millisecond,
		SuspicionTimeout:  40 * time.Millisecond,
		SyncInterval:      5 * time.Millisecond,
		ReplicateState:    true,
		ReplicateInterval: 5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mw.Close() })
	dev := mdagent.DeviceProfile{ScreenWidth: 1024, ScreenHeight: 768, MemoryMB: 512, HasAudio: true, HasDisplay: true}
	if err := mw.AddSpace("lab"); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("hostA", "lab", mdagent.Pentium4_1700(), dev, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab", mdagent.PentiumM_1600(), dev, 0); err != nil {
		t.Fatal(err)
	}
	song := mdagent.GenerateFile("track", 200_000, 5)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)
	if err := mw.RunApp(context.Background(), "hostA", demoapps.NewMediaPlayer("hostA", song)); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp(context.Background(), "hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(h string) *mdagent.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
		t.Fatal(err)
	}

	srvEp, err := mw.Fabric.Attach("ctl-server", "")
	if err != nil {
		t.Fatal(err)
	}
	srv := mw.ServeControl(srvEp)
	t.Cleanup(srv.Close)
	cliEp, err := mw.Fabric.Attach("ctl-client", "")
	if err != nil {
		t.Fatal(err)
	}
	return mw, mdagent.NewControlClient(cliEp, "ctl-server")
}

// TestControlPlaneInProcess drives the whole control plane over the
// in-process fabric: introspection, a migration with a typed Watch
// event, stop/run lifecycle, and the typed-error contract.
func TestControlPlaneInProcess(t *testing.T) {
	_, cli := newControlDeployment(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	info, err := cli.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "middleware" || info.Proto != mdagent.ProtoVersion {
		t.Fatalf("Info = %+v", info)
	}

	// Membership converges to both hosts alive.
	deadline := time.Now().Add(5 * time.Second)
	for {
		members, err := cli.Members(ctx)
		if err != nil {
			t.Fatal(err)
		}
		alive := 0
		for _, m := range members {
			if m.State == "alive" {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never converged: %+v", members)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Apps lists the running player, eventually with a snapshot head
	// (the replicator publishes within an interval or two).
	for {
		apps, err := cli.Apps(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var player *mdagent.AppInfo
		for i := range apps {
			if apps[i].Name == "smart-media-player" && apps[i].Host == "hostA" {
				player = &apps[i]
			}
		}
		if player != nil && player.Running && player.Snapshot != nil {
			if player.Snapshot.Seq == 0 && player.Snapshot.Bytes == 0 {
				t.Fatalf("snapshot head is empty: %+v", player.Snapshot)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("apps never showed a replicated player: %+v", apps)
		}
		time.Sleep(2 * time.Millisecond)
	}
	heads, err := cli.Snapshots(ctx)
	if err != nil || len(heads) == 0 {
		t.Fatalf("Snapshots = %v, err %v", heads, err)
	}
	if heads[0].App != "smart-media-player" || heads[0].Bytes <= 0 {
		t.Fatalf("snapshot head = %+v", heads[0])
	}
	stats, err := cli.Stats(ctx)
	if err != nil || len(stats) != 2 {
		t.Fatalf("Stats = %v, err %v", stats, err)
	}

	// Watch app.* and drive a migration through the control plane; the
	// stream must deliver the typed migrated event.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	events, err := cli.Watch(wctx, "app.*")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.Migrate(ctx, mdagent.MigrateRequest{App: "smart-media-player", To: "hostB"})
	if err != nil {
		t.Fatal(err)
	}
	if res.To != "hostB" || res.Total() <= 0 {
		t.Fatalf("MigrateResult = %+v", res)
	}
	var migrated *mdagent.MigratedEvent
	timeout := time.After(10 * time.Second)
	for migrated == nil {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("watch stream closed before the migrated event")
			}
			if m, ok := ev.Typed.(mdagent.MigratedEvent); ok {
				migrated = &m
			}
		case <-timeout:
			t.Fatal("no migrated event on the watch stream")
		}
	}
	if migrated.App != "smart-media-player" || migrated.Dest != "hostB" {
		t.Fatalf("migrated event = %+v", migrated)
	}

	// Lifecycle: stop the migrated app, then relaunch it from hostB's
	// installed skeleton — both through the control plane.
	if err := cli.StopApp(ctx, "smart-media-player", ""); err != nil {
		t.Fatal(err)
	}
	if err := cli.RunApp(ctx, "smart-media-player", "hostB"); err != nil {
		t.Fatal(err)
	}
	apps, err := cli.Apps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	running := false
	for _, a := range apps {
		if a.Name == "smart-media-player" && a.Host == "hostB" && a.Running {
			running = true
		}
	}
	if !running {
		t.Fatalf("relaunched app not running on hostB: %+v", apps)
	}

	// Typed error contract across the wire.
	if _, err := cli.Migrate(ctx, mdagent.MigrateRequest{App: "smart-media-player", To: "nowhere"}); !errors.Is(err, mdagent.ErrUnknownHost) {
		t.Fatalf("migrate to unknown host error = %v, want ErrUnknownHost", err)
	}
	if err := cli.RunApp(ctx, "no-such-app", "hostA"); !errors.Is(err, mdagent.ErrAppNotFound) {
		t.Fatalf("run unknown app error = %v, want ErrAppNotFound", err)
	}
	// Install on a host with neither a compiled-in factory nor a pushed
	// bundle is the typed unknown-app refusal (not ErrUnsupported — the
	// op exists, the artifact doesn't), and errors.Is survives the wire.
	if err := cli.InstallApp(ctx, "smart-media-player", "hostA"); !errors.Is(err, mdagent.ErrUnknownApp) {
		t.Fatalf("in-process install error = %v, want ErrUnknownApp", err)
	}
}

// TestControlPlaneVersionNegotiation sends a future-version frame to a
// live server: it must answer a typed ErrVersion refusal, not a gob
// parse error — the compatibility contract future clients rely on.
func TestControlPlaneVersionNegotiation(t *testing.T) {
	mw, cli := newControlDeployment(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	probeEp, err := mw.Fabric.Attach("version-probe", "")
	if err != nil {
		t.Fatal(err)
	}
	body, err := transport.Encode(struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	// A frame from a hypothetical protocol v42 client.
	_, err = probeEp.Request(ctx, "ctl-server", ctl.MsgApps, transport.SealV(42, body))
	if !errors.Is(err, mdagent.ErrVersion) {
		t.Fatalf("future-version frame error = %v, want ErrVersion", err)
	}
	// The same contract holds on the existing snapshot/registry wire.
	_, err = probeEp.Request(ctx, "registry-center", "registry.find-app", transport.SealV(42, body))
	if !errors.Is(err, mdagent.ErrVersion) {
		t.Fatalf("registry future-version frame error = %v, want ErrVersion", err)
	}
	// A current-version client keeps working after the refusals.
	if _, err := cli.Info(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestControlPlaneCancellation pins the cancellation contract: a
// canceled Watch closes its stream promptly, and a canceled WaitAppOn
// returns context.Canceled.
func TestControlPlaneCancellation(t *testing.T) {
	mw, cli := newControlDeployment(t)

	wctx, wcancel := context.WithCancel(context.Background())
	events, err := cli.Watch(wctx, "*")
	if err != nil {
		t.Fatal(err)
	}
	wcancel()
	select {
	case _, ok := <-events:
		for ok {
			_, ok = <-events
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream did not close after cancellation")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// The player runs on hostA; waiting for it on hostB blocks until
		// the cancel.
		done <- mw.WaitAppOn(ctx, "smart-media-player", "hostB", time.Minute)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled WaitAppOn error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled WaitAppOn did not return promptly")
	}
}
